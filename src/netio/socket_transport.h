// net::Transport over a real TCP socket.
//
// The lockstep and faulty transports shuttle bytes between two in-process
// endpoints; here one side of the conversation lives across a kernel socket.
// SocketTransport owns the (nonblocking) fd and exposes the remote peer as
// an internal wire endpoint: take_output() drains whatever the kernel has
// buffered, receive() queues-and-flushes toward the peer. The local engine
// (Http2Server or ClientConnection) plugs into the other seat, and
// round_once mirrors the lockstep round body — which means ExchangeDriver,
// the limits, the ledger accounting, and the trace round marks all carry
// over unchanged from PR 7.
//
// Parks mean "wait for socket readiness" instead of "skip N virtual
// rounds": a round where no octets moved and the connection is still open
// reports parkable=1, and the epoll loop unparks the driver when EPOLLIN /
// EPOLLOUT fires. Socket errors fold into the same terminal taxonomy as
// injected faults — a real ECONNRESET reaches on_transport_close as
// kUnavailable, exactly like a FaultyTransport disconnect.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>

#include "net/transport.h"
#include "netio/socket.h"
#include "util/bytes.h"

namespace h2r::netio {

class SocketTransport final : public net::Transport {
 public:
  /// Takes ownership of a connected (or accepted), nonblocking socket.
  explicit SocketTransport(Fd fd, trace::Recorder* recorder = nullptr,
                           net::ExchangeLedger* ledger = nullptr)
      : Transport(recorder, ledger), fd_(std::move(fd)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "socket";
  }

  /// The endpoint seat standing in for the remote peer. A serving exchange
  /// runs ExchangeDriver(transport, transport.wire(), engine); a load
  /// client runs ExchangeDriver(transport, client, transport.wire()).
  [[nodiscard]] net::Endpoint& wire() noexcept { return wire_; }

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  /// True while unsent octets are queued toward the peer — the epoll loop
  /// arms EPOLLOUT exactly when this holds.
  [[nodiscard]] bool wants_write() const noexcept { return !outq_.empty(); }
  /// The peer half-closed its write side (read returned 0).
  [[nodiscard]] bool peer_eof() const noexcept { return eof_; }
  /// A socket error ended the connection; last_error() says which.
  [[nodiscard]] bool failed() const noexcept { return errno_ != 0; }
  [[nodiscard]] int last_errno() const noexcept { return errno_; }

  /// Prepends octets the owner already read off the socket (the listener's
  /// preface sniff) so the engine sees an unbroken stream.
  void push_inbound(std::span<const std::uint8_t> bytes) {
    sniffed_.insert(sniffed_.end(), bytes.begin(), bytes.end());
  }

  /// Closes the socket now (shutdown paths that cannot wait for the
  /// driver to finish).
  void close() { fd_.reset(); }

 protected:
  RoundOutcome round_once(net::Endpoint& client, net::Endpoint& server,
                          net::ExchangeResult& result) override;
  bool exchange_dead(net::ExchangeResult& result) override;

 private:
  /// The remote peer's seat: socket reads surface as take_output, receives
  /// queue toward the kernel.
  class WireEndpoint final : public net::Endpoint {
   public:
    explicit WireEndpoint(SocketTransport& t) : t_(t) {}
    [[nodiscard]] Bytes take_output() override { return t_.read_from_socket(); }
    void receive(std::span<const std::uint8_t> bytes) override {
      t_.queue_to_socket(bytes);
    }
    void recycle(Bytes buffer) override { t_.pool_.release(std::move(buffer)); }
    [[nodiscard]] bool alive() const override {
      return t_.fd_.valid() && !t_.eof_ && t_.errno_ == 0;
    }

   private:
    SocketTransport& t_;
  };

  [[nodiscard]] Bytes read_from_socket();
  void queue_to_socket(std::span<const std::uint8_t> bytes);
  /// Takes ownership of an already-built outbound buffer — the gathered
  /// write path: no memcpy, the engine's round output rides as-is.
  void enqueue_write(Bytes bytes);
  /// Pushes queued buffers into the kernel with one sendmsg per loop turn
  /// (gathered: up to kMaxIov buffers per call) until EAGAIN / empty /
  /// error. Fully-drained buffers are recycled to @p local when given (the
  /// engine seat's pool), else to our own pool. Returns true when any octet
  /// left.
  bool flush_backlog(net::Endpoint* local);

  Fd fd_;
  WireEndpoint wire_{*this};
  BufferPool pool_;
  Bytes sniffed_;       ///< owner-injected inbound prefix (preface sniff)
  /// Outbound frame-buffer queue, oldest first; head_off_ octets of the
  /// front buffer are already in the kernel (short-write spill).
  std::deque<Bytes> outq_;
  std::size_t head_off_ = 0;
  bool eof_ = false;
  int errno_ = 0;       ///< first fatal socket errno (0 = none)
  bool closed_reported_ = false;
};

}  // namespace h2r::netio
