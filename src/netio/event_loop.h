// A small level-triggered epoll reactor.
//
// Both netio binaries — the h2c listener and the load generator — run every
// socket on one of these. Level-triggered because the transport layer may
// deliberately leave kernel buffers partially drained (per-round intake
// caps); edge-triggered epoll would require exhaustive drain loops in every
// handler to avoid lost wakeups. An eventfd wired into the interest set
// makes request_shutdown() safe from signal handlers and other threads —
// that is how SIGINT turns into a graceful GOAWAY drain.
//
// Handlers are looked up by fd at dispatch time, so a handler may remove
// any fd (including its own) mid-dispatch; stale events for removed fds in
// the same batch are skipped rather than dispatched into freed memory.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "netio/socket.h"
#include "util/status.h"

namespace h2r::netio {

/// Receives readiness callbacks from EpollLoop.
class IoHandler {
 public:
  virtual ~IoHandler() = default;
  /// @p events is the raw epoll mask (EPOLLIN | EPOLLOUT | EPOLLERR | ...).
  virtual void on_ready(std::uint32_t events) = 0;
};

class EpollLoop {
 public:
  EpollLoop();
  ~EpollLoop() = default;

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Construction result: epoll_create1 / eventfd can fail under fd
  /// pressure, and callers must find out before polling.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Registers @p fd with interest @p events, dispatching to @p handler.
  /// The handler must outlive the registration.
  [[nodiscard]] Status add(int fd, IoHandler* handler, std::uint32_t events);
  /// Re-arms @p fd with a new interest mask.
  [[nodiscard]] Status modify(int fd, std::uint32_t events);
  /// Deregisters @p fd. Safe mid-dispatch; pending events for it are
  /// dropped. The caller closes the fd itself.
  void remove(int fd);

  /// One epoll_wait + dispatch pass. @p timeout_ms: -1 blocks, 0 polls.
  /// Returns the number of fds dispatched (0 on timeout).
  [[nodiscard]] Result<int> poll(int timeout_ms);

  /// Async-signal-safe shutdown request: pokes the eventfd so a blocked
  /// poll() wakes immediately. shutdown_requested() turns true on the next
  /// dispatch pass.
  void request_shutdown() noexcept;
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_;
  }

  [[nodiscard]] std::size_t watched() const noexcept {
    return handlers_.size();
  }

 private:
  Fd epoll_;
  Fd wake_;  ///< eventfd; readable ⇒ shutdown requested
  Status status_;
  std::unordered_map<int, IoHandler*> handlers_;
  bool shutdown_requested_ = false;
};

}  // namespace h2r::netio
