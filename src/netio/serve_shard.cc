#include "netio/serve_shard.h"

#include <cerrno>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <thread>
#include <utility>

namespace h2r::netio {

ShardedServe::~ShardedServe() = default;

Result<std::unique_ptr<ShardedServe>> ShardedServe::create(
    const ShardedServeOptions& opts) {
  if (opts.shards == 0 || opts.shards > 64) {
    return InternalError("shards must be in 1..64");
  }
  // make_unique can't reach the private ctor.
  std::unique_ptr<ShardedServe> sharded(new ShardedServe());
  sharded->opts_ = opts;

  const auto shard_sink = [&](std::size_t i) -> trace::Recorder* {
    if (opts.base.recorder == nullptr) return nullptr;
    while (sharded->shard_tapes_.size() <= i) {
      // Unbounded tape: per-connection rings already bound memory, this
      // only accumulates their flushed segments until the post-join merge.
      sharded->shard_tapes_.push_back(
          std::make_unique<trace::RingRecorder>(0));
    }
    return sharded->shard_tapes_[i].get();
  };

  if (!opts.force_accept_fallback) {
    // SO_REUSEPORT path: shard 0 resolves the port (opts.base.port may be
    // 0 = ephemeral), siblings bind the same one.
    std::uint16_t port = opts.base.port;
    bool supported = true;
    for (unsigned i = 0; i < opts.shards; ++i) {
      ServeOptions shard_opts = opts.base;
      shard_opts.port = port;
      shard_opts.reuse_port = true;
      shard_opts.recorder = shard_sink(i);
      auto shard = ServeLoop::create(shard_opts);
      if (!shard.ok()) {
        if (i == 0 && shard.status().code() == StatusCode::kRefused) {
          supported = false;  // kernel lacks SO_REUSEPORT: fall back
          break;
        }
        return shard.status();
      }
      if (i == 0) port = shard.value()->port();
      sharded->shards_.push_back(std::move(shard).value());
    }
    if (supported) {
      sharded->reuseport_ = true;
      sharded->port_ = port;
      return sharded;
    }
    sharded->shards_.clear();
  }

  // Acceptor fallback: one plain listener here, external-accept shards fed
  // round-robin through their mailboxes.
  if (!sharded->acceptor_loop_.status().ok()) {
    return sharded->acceptor_loop_.status();
  }
  auto listener = listen_loopback(opts.base.port, opts.base.backlog);
  if (!listener.ok()) return listener.status();
  sharded->listener_ = std::move(listener).value();
  auto port = local_port(sharded->listener_.get());
  if (!port.ok()) return port.status();
  sharded->port_ = port.value();
  for (unsigned i = 0; i < opts.shards; ++i) {
    ServeOptions shard_opts = opts.base;
    shard_opts.external_accept = true;
    shard_opts.recorder = shard_sink(i);
    auto shard = ServeLoop::create(shard_opts);
    if (!shard.ok()) return shard.status();
    sharded->shards_.push_back(std::move(shard).value());
  }
  return sharded;
}

void ShardedServe::request_shutdown() noexcept {
  // Eventfd writes all the way down — safe from signal handlers, and every
  // shard begins its GOAWAY drain concurrently.
  for (const auto& shard : shards_) shard->request_shutdown();
  acceptor_loop_.request_shutdown();
}

void ShardedServe::run_acceptor() {
  class Handler final : public IoHandler {
   public:
    explicit Handler(ShardedServe& sharded) : sharded_(sharded) {}
    void on_ready(std::uint32_t events) override {
      (void)events;
      sharded_.accept_some();
    }

   private:
    ShardedServe& sharded_;
  };
  Handler handler(*this);
  if (!acceptor_loop_.add(listener_.get(), &handler, EPOLLIN).ok()) {
    ++acceptor_stats_.errors["epoll-add"];
    return;
  }
  while (true) {
    auto polled = acceptor_loop_.poll(-1);
    if (!polled.ok()) break;
    if (acceptor_loop_.shutdown_requested()) break;
  }
  acceptor_loop_.remove(listener_.get());
  listener_.reset();
}

void ShardedServe::accept_some() {
  while (true) {
    Fd fd(::accept4(listener_.get(), nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      ++acceptor_stats_.accept_refused;
      ++acceptor_stats_.errors[errno_key(errno)];
      return;
    }
    // Deterministic round-robin: accept i lands on shard i % N. The shard
    // counts it accepted when its mailbox dispatches.
    ServeLoop& shard = *shards_[accept_rr_ % shards_.size()];
    ++accept_rr_;
    shard.post_connection(fd.release());
  }
}

Status ShardedServe::run() {
  std::vector<std::thread> threads;
  std::vector<Status> results(shards_.size(), OkStatus());
  std::thread acceptor;
  if (!reuseport_) acceptor = std::thread([this] { run_acceptor(); });
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back(
        [this, i, &results] { results[i] = shards_[i]->run(); });
  }
  results[0] = shards_[0]->run();  // shard 0 rides the calling thread
  for (auto& t : threads) t.join();
  if (acceptor.joinable()) acceptor.join();

  // Merge after every thread has quiesced, so nothing tears: stats are
  // pure sums, trace tapes replay whole in shard order.
  merged_ = ServeStats{};
  for (const auto& shard : shards_) merged_.merge(shard->stats());
  merged_.merge(acceptor_stats_);
  if (opts_.base.recorder != nullptr) {
    for (const auto& tape : shard_tapes_) {
      tape->replay_into(*opts_.base.recorder);
    }
  }
  for (const Status& s : results) {
    if (!s.ok()) return s;
  }
  return OkStatus();
}

}  // namespace h2r::netio
