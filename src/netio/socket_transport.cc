#include "netio/socket_transport.h"

#include <cerrno>
#include <sys/socket.h>

namespace h2r::netio {

namespace {
// Per-recv buffer and per-round intake cap. The cap bounds how much one
// round materializes in memory; level-triggered epoll (and the pump loop
// itself — a progressed round is immediately followed by another) picks up
// whatever the kernel still holds.
constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::size_t kMaxPerRound = 256 * 1024;
}  // namespace

Bytes SocketTransport::read_from_socket() {
  Bytes out = pool_.acquire();
  if (!sniffed_.empty()) {
    // Owner-sniffed prefix (the listener's preface peek) re-enters the
    // stream ahead of anything still in the kernel.
    out.insert(out.end(), sniffed_.begin(), sniffed_.end());
    sniffed_.clear();
  }
  if (eof_ || errno_ != 0 || !fd_.valid()) return out;
  while (out.size() < kMaxPerRound) {
    const std::size_t base = out.size();
    out.resize(base + kReadChunk);
    const ssize_t n = ::recv(fd_.get(), out.data() + base, kReadChunk, 0);
    if (n > 0) {
      out.resize(base + static_cast<std::size_t>(n));
      // A short read usually means the kernel is drained; stop here — the
      // pump re-reads next round, and epoll refires if more arrived.
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    out.resize(base);
    if (n == 0) {
      eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    errno_ = errno;
    break;
  }
  return out;
}

void SocketTransport::queue_to_socket(std::span<const std::uint8_t> bytes) {
  backlog_.insert(backlog_.end(), bytes.begin(), bytes.end());
  (void)flush_backlog();
}

bool SocketTransport::flush_backlog() {
  bool moved = false;
  while (write_pos_ < backlog_.size() && errno_ == 0 && fd_.valid()) {
    // MSG_NOSIGNAL: a peer that already reset must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_.get(), backlog_.data() + write_pos_,
               backlog_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      moved = true;
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    errno_ = errno;
    break;
  }
  if (write_pos_ == backlog_.size()) {
    backlog_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > kMaxPerRound) {
    backlog_.erase(backlog_.begin(),
                   backlog_.begin() + static_cast<std::ptrdiff_t>(write_pos_));
    write_pos_ = 0;
  }
  return moved;
}

bool SocketTransport::exchange_dead(net::ExchangeResult& result) {
  if (errno_ == 0 && fd_.valid()) return false;
  result.outcome = net::ExchangeOutcome::kDisconnected;
  return true;
}

net::Transport::RoundOutcome SocketTransport::round_once(
    net::Endpoint& client, net::Endpoint& server,
    net::ExchangeResult& result) {
  RoundOutcome out;
  // One of the two seats is our wire endpoint; the other is the local
  // engine whose terminal state a dying socket must reach.
  net::Endpoint& local =
      &client == static_cast<net::Endpoint*>(&wire_) ? server : client;

  // The lockstep round body, verbatim: this is what keeps socket-driven
  // exchanges bit-compatible with the in-process transports as far as the
  // endpoints can observe.
  Bytes c2s = client.take_output();
  if (!c2s.empty()) server.receive(c2s);
  Bytes s2c = server.take_output();
  if (!s2c.empty()) client.receive(s2c);
  result.bytes_c2s += c2s.size();
  result.bytes_s2c += s2c.size();
  out.progressed = !c2s.empty() || !s2c.empty();
  client.recycle(std::move(c2s));
  server.recycle(std::move(s2c));

  // An EPOLLOUT wake can arrive with nothing new to say; retry the backlog.
  out.progressed |= flush_backlog();

  if (errno_ != 0) {
    result.outcome = net::ExchangeOutcome::kDisconnected;
    if (!closed_reported_) {
      closed_reported_ = true;
      local.on_transport_close(errno_status(errno_, "socket"));
    }
    out.terminal = true;
    return out;
  }

  const bool local_done = !local.alive();
  const bool flushed = !wants_write();

  if (local_done && flushed) {
    // The engine closed cleanly and every octet it produced is in the
    // kernel: quiescent. (If this round still progressed, the driver loops
    // and lands here again with progressed=false.)
    return out;
  }
  if (eof_ && !local_done && !out.progressed) {
    // Peer hung up while the local endpoint still wanted the connection —
    // a real disconnect, classified exactly like an injected one. Only
    // after a quiet round, so the engine digests everything that arrived.
    result.outcome = net::ExchangeOutcome::kDisconnected;
    if (!closed_reported_) {
      closed_reported_ = true;
      local.on_transport_close(
          UnavailableError("socket: peer closed connection"));
    }
    out.terminal = true;
    return out;
  }
  // Still open with nothing to do right now: park until epoll reports
  // readiness. One "round" of sleep — wall-clock parks have no virtual
  // duration.
  if (!out.progressed) out.parkable = 1;
  return out;
}

}  // namespace h2r::netio
