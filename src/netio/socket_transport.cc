#include "netio/socket_transport.h"

#include <array>
#include <cerrno>
#include <sys/socket.h>
#include <sys/uio.h>

namespace h2r::netio {

namespace {
// Per-recv buffer and per-round intake cap. The cap bounds how much one
// round materializes in memory; level-triggered epoll (and the pump loop
// itself — a progressed round is immediately followed by another) picks up
// whatever the kernel still holds.
constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::size_t kMaxPerRound = 256 * 1024;
// Gathered-write fan-in: buffers per sendmsg. IOV_MAX is 1024 everywhere
// that matters; 64 already amortizes the syscall without a huge stack array.
constexpr std::size_t kMaxIov = 64;
}  // namespace

Bytes SocketTransport::read_from_socket() {
  Bytes out = pool_.acquire();
  if (!sniffed_.empty()) {
    // Owner-sniffed prefix (the listener's preface peek) re-enters the
    // stream ahead of anything still in the kernel.
    out.insert(out.end(), sniffed_.begin(), sniffed_.end());
    sniffed_.clear();
  }
  if (eof_ || errno_ != 0 || !fd_.valid()) return out;
  while (out.size() < kMaxPerRound) {
    const std::size_t base = out.size();
    out.resize(base + kReadChunk);
    const ssize_t n = ::recv(fd_.get(), out.data() + base, kReadChunk, 0);
    if (n > 0) {
      out.resize(base + static_cast<std::size_t>(n));
      // A short read usually means the kernel is drained; stop here — the
      // pump re-reads next round, and epoll refires if more arrived.
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    out.resize(base);
    if (n == 0) {
      eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    errno_ = errno;
    break;
  }
  return out;
}

void SocketTransport::queue_to_socket(std::span<const std::uint8_t> bytes) {
  // Copy slow path, for callers that only hold a view (the wire seat's
  // receive contract). The round body bypasses this by moving the producer's
  // buffer straight into the queue.
  if (bytes.empty()) return;
  Bytes buf = pool_.acquire();
  buf.assign(bytes.begin(), bytes.end());
  outq_.push_back(std::move(buf));
  (void)flush_backlog(nullptr);
}

void SocketTransport::enqueue_write(Bytes bytes) {
  if (bytes.empty()) return;
  outq_.push_back(std::move(bytes));
}

bool SocketTransport::flush_backlog(net::Endpoint* local) {
  bool moved = false;
  // One retry on EINTR: a signal mid-send used to surface as a would-block
  // round, costing a park + EPOLLOUT wake under signal-heavy load. A second
  // interruption defers to the next round instead of spinning.
  int eintr_budget = 1;
  while (!outq_.empty() && errno_ == 0 && fd_.valid()) {
    std::array<iovec, kMaxIov> iov;
    std::size_t n_iov = 0;
    std::size_t skip = head_off_;
    for (const Bytes& b : outq_) {
      if (n_iov == kMaxIov) break;
      iov[n_iov].iov_base = const_cast<std::uint8_t*>(b.data() + skip);
      iov[n_iov].iov_len = b.size() - skip;
      ++n_iov;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = n_iov;
    // sendmsg rather than writev: MSG_NOSIGNAL — a peer that already reset
    // must surface as EPIPE, not kill the process with SIGPIPE.
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      moved = true;
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        Bytes& front = outq_.front();
        const std::size_t avail = front.size() - head_off_;
        if (left < avail) {
          head_off_ += left;  // short write: spill stays queued
          break;
        }
        left -= avail;
        head_off_ = 0;
        Bytes done = std::move(front);
        outq_.pop_front();
        // Hand the drained buffer back to whichever pool grew it, so the
        // engine's next take_output round reuses the capacity.
        if (local != nullptr) {
          local->recycle(std::move(done));
        } else {
          pool_.release(std::move(done));
        }
      }
      continue;
    }
    if (n == 0) break;  // defensive: zero-length iov set should not occur
    if (errno == EINTR) {
      if (eintr_budget-- > 0) continue;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    errno_ = errno;
    break;
  }
  return moved;
}

bool SocketTransport::exchange_dead(net::ExchangeResult& result) {
  if (errno_ == 0 && fd_.valid()) return false;
  result.outcome = net::ExchangeOutcome::kDisconnected;
  return true;
}

net::Transport::RoundOutcome SocketTransport::round_once(
    net::Endpoint& client, net::Endpoint& server,
    net::ExchangeResult& result) {
  RoundOutcome out;
  // One of the two seats is our wire endpoint; the other is the local
  // engine whose terminal state a dying socket must reach.
  net::Endpoint& local =
      &client == static_cast<net::Endpoint*>(&wire_) ? server : client;

  // The lockstep round body, with one twist: when the destination seat is
  // the wire, the producer's buffer MOVES into the write queue instead of
  // being copied — the gathered flush below recycles it to the producer
  // once the kernel has taken it. Byte order and round structure stay
  // bit-compatible with the in-process transports as far as the endpoints
  // can observe.
  Bytes c2s = client.take_output();
  result.bytes_c2s += c2s.size();
  out.progressed = !c2s.empty();
  if (&server == static_cast<net::Endpoint*>(&wire_)) {
    enqueue_write(std::move(c2s));
  } else {
    if (!c2s.empty()) server.receive(c2s);
    client.recycle(std::move(c2s));
  }
  Bytes s2c = server.take_output();
  result.bytes_s2c += s2c.size();
  out.progressed |= !s2c.empty();
  if (&client == static_cast<net::Endpoint*>(&wire_)) {
    enqueue_write(std::move(s2c));
  } else {
    if (!s2c.empty()) client.receive(s2c);
    server.recycle(std::move(s2c));
  }

  // One gathered flush per round: every frame buffer either seat produced
  // this round rides a single sendmsg. An EPOLLOUT wake with nothing new to
  // say lands here too and retries the queue.
  out.progressed |= flush_backlog(&local);

  if (errno_ != 0) {
    result.outcome = net::ExchangeOutcome::kDisconnected;
    if (!closed_reported_) {
      closed_reported_ = true;
      local.on_transport_close(errno_status(errno_, "socket"));
    }
    out.terminal = true;
    return out;
  }

  const bool local_done = !local.alive();
  const bool flushed = !wants_write();

  if (local_done && flushed) {
    // The engine closed cleanly and every octet it produced is in the
    // kernel: quiescent. (If this round still progressed, the driver loops
    // and lands here again with progressed=false.)
    return out;
  }
  if (eof_ && !local_done && !out.progressed) {
    // Peer hung up while the local endpoint still wanted the connection —
    // a real disconnect, classified exactly like an injected one. Only
    // after a quiet round, so the engine digests everything that arrived.
    result.outcome = net::ExchangeOutcome::kDisconnected;
    if (!closed_reported_) {
      closed_reported_ = true;
      local.on_transport_close(
          UnavailableError("socket: peer closed connection"));
    }
    out.terminal = true;
    return out;
  }
  // Still open with nothing to do right now: park until epoll reports
  // readiness. One "round" of sleep — wall-clock parks have no virtual
  // duration.
  if (!out.progressed) out.parkable = 1;
  return out;
}

}  // namespace h2r::netio
