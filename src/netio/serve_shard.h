// Multi-core sharded serving: N ServeLoops behind one port.
//
// Each shard is a full ServeLoop — its own thread, epoll reactor, timer
// wheel, connection table, per-shard header-block cache, and per-shard
// trace sink — so shards share no mutable state and the hot path takes no
// locks. Two ways for connections to reach a shard:
//
//   SO_REUSEPORT (default): every shard binds its own listener on the same
//   port and the kernel load-balances accepts across them — the nginx/h2o
//   multi-worker deployment shape.
//
//   Acceptor fallback: where SO_REUSEPORT is unavailable (or when forced,
//   for deterministic tests), one acceptor thread owns the single listener
//   and round-robins accepted fds into the shards' thread-safe mailboxes
//   (ServeLoop::post_connection).
//
// Shutdown broadcasts to every shard reactor (async-signal-safe eventfd
// wakes), so all shards GOAWAY + drain concurrently under their own
// deadline. After the threads join, per-shard ServeStats merge by summation
// and per-shard trace tapes replay whole, in shard order, into the caller's
// sink — connection segments never interleave across shards, so the merged
// trace is untorn.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netio/serve.h"
#include "trace/recorder.h"
#include "util/status.h"

namespace h2r::netio {

struct ShardedServeOptions {
  /// Per-shard configuration. `base.recorder` is the FINAL merged sink;
  /// shards record privately and merge at join. `base.port == 0` resolves
  /// to one kernel-assigned port shared by every shard.
  ServeOptions base;
  /// Number of serve shards (threads). 1 is exactly one ServeLoop.
  unsigned shards = 1;
  /// Skip SO_REUSEPORT and use the single-acceptor round-robin path even
  /// where the kernel supports shared ports. Deterministic: connection i
  /// (in accept order) lands on shard i % shards.
  bool force_accept_fallback = false;
};

class ShardedServe {
 public:
  /// Binds every shard's listener (or the fallback's single listener) so
  /// port() is valid before run(). SO_REUSEPORT failure on the first bind
  /// falls back to the acceptor automatically; forcing the fallback never
  /// touches SO_REUSEPORT.
  static Result<std::unique_ptr<ShardedServe>> create(
      const ShardedServeOptions& opts);
  ~ShardedServe();

  /// Serves until request_shutdown() and every shard's drain completes.
  /// Spawns shards-1 threads (+1 acceptor in fallback mode), runs shard 0
  /// on the calling thread, joins, then merges stats and traces. Returns
  /// the first shard error, if any.
  Status run();

  /// Async-signal-safe: broadcasts shutdown to every shard reactor (and
  /// the acceptor).
  void request_shutdown() noexcept;

  /// The shared port every shard answers on.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// True when the kernel is balancing accepts (SO_REUSEPORT path).
  [[nodiscard]] bool used_reuseport() const noexcept { return reuseport_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Merged tallies — valid after run() returns.
  [[nodiscard]] const ServeStats& stats() const noexcept { return merged_; }
  /// Shard i's own tallies — valid after run() returns.
  [[nodiscard]] const ServeStats& shard_stats(std::size_t i) const {
    return shards_.at(i)->stats();
  }

 private:
  ShardedServe() = default;

  void run_acceptor();
  void accept_some();

  std::vector<std::unique_ptr<ServeLoop>> shards_;
  /// Per-shard private trace sinks (unbounded tapes), replayed into
  /// opts_.base.recorder in shard order after the join. Sized to shards_
  /// when the caller supplied a sink, empty otherwise.
  std::vector<std::unique_ptr<trace::RingRecorder>> shard_tapes_;
  ShardedServeOptions opts_;
  std::uint16_t port_ = 0;
  bool reuseport_ = false;
  ServeStats merged_;

  // Acceptor-fallback state.
  Fd listener_;
  EpollLoop acceptor_loop_;
  std::uint64_t accept_rr_ = 0;  ///< round-robin cursor over shards
  /// Accept-path failures tallied by the acceptor thread (only the refused
  /// counters are ever touched); folded into merged_ after the join.
  ServeStats acceptor_stats_;
};

}  // namespace h2r::netio
