// POSIX socket plumbing for the real-socket serving mode.
//
// Everything below src/netio speaks to actual kernel sockets — the first
// code in the repository that does. The policy decisions live here once:
// every socket is nonblocking (the epoll loop must never block in read or
// write), every listener binds loopback by default (this is a measurement
// harness, not an internet-facing daemon), and every errno that reaches a
// caller has already been folded into the PR-4 terminal-state taxonomy, so
// a real ECONNRESET classifies exactly like an injected disconnect.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace h2r::netio {

/// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the held descriptor (if any) and adopts @p fd.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Maps an errno from socket I/O into the terminal-state taxonomy:
/// connection-loss errnos (ECONNRESET, EPIPE, ECONNREFUSED, timeouts,
/// unreachable networks) become kUnavailable — the StatusCode the fault
/// transport's disconnects carry, so ClientConnection::on_transport_close /
/// Http2Server::on_transport_close classify a real peer dying exactly like
/// an injected one. Resource exhaustion (EMFILE, ENFILE, ENOBUFS — the
/// accept-overflow class) becomes kRefused. Anything else is kInternal.
[[nodiscard]] Status errno_status(int err, std::string_view what);

/// Stable taxonomy key for an errno: "ECONNRESET", "EPIPE", ... or
/// "errno-N" for errnos without a reserved name. Keys count connection
/// outcomes in ServeStats / LoadReport error maps.
[[nodiscard]] std::string errno_key(int err);

/// Flips O_NONBLOCK on.
[[nodiscard]] Status set_nonblocking(int fd);

/// Binds a nonblocking TCP listener on 127.0.0.1:@p port (0 = kernel picks
/// an ephemeral port; read it back with local_port) and listens. With
/// @p reuse_port, sets SO_REUSEPORT before binding so several listeners —
/// one per serve shard — share the port and the kernel load-balances
/// accepts across them; fails (kRefused) where the kernel lacks support,
/// which is the sharded listener's cue to fall back to a single acceptor.
[[nodiscard]] Result<Fd> listen_loopback(std::uint16_t port, int backlog,
                                         bool reuse_port = false);

/// The port a bound socket actually landed on.
[[nodiscard]] Result<std::uint16_t> local_port(int fd);

/// Begins a nonblocking TCP connect to @p host:@p port (IPv4 dotted quad).
/// Typically returns with the connect still in progress: wait for
/// writability, then check pending_socket_error.
[[nodiscard]] Result<Fd> connect_tcp(const std::string& host,
                                     std::uint16_t port);

/// SO_ERROR readout (0 = connected) once a nonblocking connect signals
/// writability.
[[nodiscard]] int pending_socket_error(int fd);

}  // namespace h2r::netio
