// The h2c listener: profile-driven Http2Server engines behind real sockets.
//
// ServeLoop binds a loopback TCP listener, accepts connections onto the
// epoll reactor, and runs one SocketTransport + ExchangeDriver + Http2Server
// triple per connection — the deviation engine the corpus scan probes,
// now answerable by curl. First bytes on every accepted socket are sniffed
// against the h2 client preface to pick the engine's start mode: a full
// preface match is a prior-knowledge client (StartMode::kTls — the TLS/ALPN
// step happened "outside" or is assumed), anything else is HTTP/1.1 text
// headed for the §3.2 Upgrade: h2c handshake (StartMode::kH2c). The sniffed
// octets re-enter the stream through the transport so the engine sees them
// unbroken.
//
// Shutdown is graceful by construction: request_shutdown() (async-signal-
// safe; h2serve wires SIGINT/SIGTERM to it) stops the accept path, sends
// GOAWAY on every live engine, and drains in-flight streams under a bounded
// deadline kept on the same net::TimerWheel the scan reactor uses. Sockets
// that outlive the deadline are force-closed and counted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/readiness.h"
#include "netio/event_loop.h"
#include "netio/socket.h"
#include "server/engine.h"
#include "trace/recorder.h"
#include "util/status.h"

namespace h2r::netio {

struct ServeOptions {
  /// ServerProfile key (server/profiles.h registry): "nginx", "h2o", ...
  std::string profile_key = "h2o";
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read back via port()).
  std::uint16_t port = 0;
  int backlog = 128;
  /// Opt the profile into MitigationPolicy::hardened().
  bool hardened = false;
  /// Graceful-shutdown drain budget: connections still open this many ms
  /// after request_shutdown() are force-closed.
  int drain_ms = 2000;
  /// Accepts beyond this many live connections are refused (closed
  /// immediately and counted as overload in the error taxonomy).
  std::size_t max_connections = 1024;
  /// Optional wiretap sink. Null = off. Each connection records onto a
  /// private bounded ring tape (engine c2s+s2c frames, transport rounds)
  /// that is replayed into this sink whole when the connection retires, so
  /// the exported trace stays contiguous per connection segment however
  /// many sockets interleave on the reactor.
  trace::Recorder* recorder = nullptr;
  /// Per-connection tape bound, in 32-byte binary records. A connection
  /// that records more than this keeps only the newest records; evictions
  /// are counted in ServeStats::trace_drops. Keeps always-on tracing O(1)
  /// per connection no matter how long one lives.
  std::size_t tape_capacity = 4096;
  /// Sets SO_REUSEPORT on the listener so sibling shards can bind the same
  /// port (create() fails where the kernel refuses — the sharded listener
  /// falls back to external_accept).
  bool reuse_port = false;
  /// No listener at all: connections arrive through post_connection()
  /// (the sharded listener's single-acceptor fallback mode).
  bool external_accept = false;
  /// Engine response header-block cache (Http2Server::set_header_block_cache).
  bool header_block_cache = true;
};

/// What the listener did, exportable as JSON after run() returns.
struct ServeStats {
  std::uint64_t accepted = 0;
  /// Exchanges that ended cleanly: engine-side close, or peer GOAWAY +
  /// close with no streams in flight (the load generator's normal exit).
  std::uint64_t served_clean = 0;
  /// Peer vanished mid-exchange (reset, abort, EOF with streams open).
  std::uint64_t disconnected = 0;
  /// HTTP/1.1 clients whose upgrade offer the profile declined (or that
  /// never offered one); answered with HTTP/1.1 and closed.
  std::uint64_t declined_h1 = 0;
  /// Accepts refused: EMFILE-class errno or the max_connections gate.
  std::uint64_t accept_refused = 0;
  /// Connections force-closed when the drain deadline expired.
  std::uint64_t drain_expired = 0;
  std::uint64_t rounds = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Trace records evicted from per-connection ring tapes before flush
  /// (oldest-first; see ServeOptions::tape_capacity).
  std::uint64_t trace_drops = 0;
  /// Response header-block cache tallies, private (per-engine) + shared
  /// (per-shard static blocks) combined. Counted at connection settle, so
  /// force-closed stragglers' tallies are not included — like rounds.
  std::uint64_t header_cache_hits = 0;
  std::uint64_t header_cache_misses = 0;
  /// Terminal error taxonomy: errno_key / classifier → count.
  std::map<std::string, std::uint64_t> errors;

  /// Folds another shard's tallies into this one: every counter adds, the
  /// error maps add per key. Shard merging is exactly summation — nothing
  /// a shard counts is double-counted or averaged.
  void merge(const ServeStats& other);

  [[nodiscard]] std::string json() const;
};

class ServeLoop {
 public:
  /// Binds and registers the listener. Fails on bad profile key, bind
  /// errors, or reactor construction failure.
  static Result<std::unique_ptr<ServeLoop>> create(const ServeOptions& opts);
  ~ServeLoop();

  /// The port actually bound (resolves opts.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves until request_shutdown() and the drain completes (or its
  /// deadline force-closes stragglers). Only returns early on reactor
  /// errors.
  Status run();

  /// Async-signal-safe: wakes the reactor and begins the graceful drain.
  void request_shutdown() noexcept { loop_.request_shutdown(); }

  /// Thread-safe: hands an accepted, nonblocking socket to this loop (the
  /// external_accept mode's intake — a sharded listener's acceptor thread
  /// round-robins here). The fd is adopted on the next dispatch pass; after
  /// run() returned or during drain it is closed and counted refused.
  void post_connection(int fd) noexcept;

  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t open_connections() const noexcept {
    return conns_.size();
  }

 private:
  struct Conn;
  class AcceptHandler;
  class MailboxHandler;

  explicit ServeLoop(const ServeOptions& opts);

  void on_accept_ready();
  void on_mailbox_ready();
  void adopt(Fd fd);
  void drive(Conn& conn);
  void settle(Conn& conn);
  void flush_tape(Conn& conn);
  void update_interest(Conn& conn);
  void begin_drain();
  void retire_pending();
  [[nodiscard]] std::uint64_t now_ms() const;

  ServeOptions opts_;
  EpollLoop loop_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::shared_ptr<const server::ServerProfile> profile_;
  std::shared_ptr<const server::Site> site_;
  std::unique_ptr<AcceptHandler> accept_handler_;
  /// external_accept intake: posted fds wait here until the eventfd wake
  /// dispatches them on the loop thread. The only cross-thread state.
  std::unique_ptr<MailboxHandler> mailbox_handler_;
  Fd mailbox_;
  std::mutex mailbox_mu_;
  std::vector<int> mailbox_pending_;
  std::map<int, std::unique_ptr<Conn>> conns_;  ///< keyed by fd
  /// Static response header blocks shared across this loop's connections —
  /// the per-shard cache (one ServeLoop per shard thread, so no locking).
  server::SharedBlockCache shared_blocks_;
  std::vector<int> retired_;  ///< fds to reap after the dispatch pass
  ServeStats stats_;
  bool draining_ = false;
  /// Drain deadline, on the same timer wheel the scan reactor sleeps on
  /// (ticks are milliseconds here instead of virtual rounds).
  net::TimerWheel<int> deadlines_;
  std::uint64_t drain_deadline_ms_ = 0;
  std::uint64_t t0_ = 0;  ///< steady-clock epoch for now_ms()
};

}  // namespace h2r::netio
