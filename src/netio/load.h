// The in-repo load generator (h2load-mini's engine) and a synchronous
// single-connection socket client for tests.
//
// run_load multiplexes N real TCP connections on one epoll reactor, each a
// ClientConnection + SocketTransport + ExchangeDriver triple — the same
// stack the scan runs in-process, pointed at a real listener. Every
// connection keeps `streams` GETs in flight (seawreck-style multiplexing),
// refills as responses complete, and closes with GOAWAY once its share of
// the request budget is served. The report carries RPS, a per-request
// latency distribution, and the error taxonomy (connect / transport /
// protocol, keyed by errno name where one exists).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/client.h"
#include "net/transport.h"
#include "netio/socket_transport.h"
#include "util/stats.h"
#include "util/status.h"

namespace h2r::netio {

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent TCP connections (--con).
  int connections = 4;
  /// Total requests across the whole run (--req), distributed round-robin
  /// over the connections.
  int requests = 100;
  /// Concurrent streams kept in flight per connection (--streams).
  int streams = 1;
  std::string path = "/";
  int connect_timeout_ms = 5000;
  /// Whole-run safety deadline: outstanding work past this is counted
  /// failed and the loop exits (a wedged server must not hang CI).
  int run_timeout_ms = 60000;
  /// Generator threads (--threads). Connections and the request budget
  /// split across one single-threaded runner per thread; the per-thread
  /// reports merge into one (see LoadReport::merge). Capped at
  /// `connections` — an idle runner would just skew wall_ms.
  int threads = 1;
};

struct LoadReport {
  std::uint64_t completed = 0;  ///< requests with END_STREAM (or RST) seen
  std::uint64_t failed = 0;     ///< issued or budgeted but never completed
  std::uint64_t rst_streams = 0;
  std::uint64_t connect_errors = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t clean_closes = 0;  ///< connections that finished via GOAWAY
  double wall_ms = 0.0;
  double rps = 0.0;
  SampleSet latency_ms;  ///< request submit → END_STREAM, per request
  std::map<std::string, std::uint64_t> errors;  ///< taxonomy key → count

  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return connect_errors + transport_errors + protocol_errors;
  }

  /// Folds a concurrent runner's report into this one: counters and the
  /// error map sum, latency samples pool (union — exact quantiles),
  /// wall_ms takes the max (the runners overlapped), and rps is recomputed
  /// as merged completions over merged wall time.
  void merge(const LoadReport& other);

  [[nodiscard]] std::string json() const;
};

/// Runs the load described by @p opts against a listening h2 server.
/// Single-threaded; returns once every connection finished or the run
/// deadline expired.
[[nodiscard]] LoadReport run_load(const LoadOptions& opts);

/// One ClientConnection over one real socket, driven synchronously with
/// poll(2) — the loopback integration tests' workhorse. The caller scripts
/// the client (send_request, send_frame, ...) and pumps the exchange until
/// a predicate holds.
class SocketClient {
 public:
  /// Connects (bounded by @p timeout_ms) and emits the connection preface.
  static Result<std::unique_ptr<SocketClient>> connect(
      const std::string& host, std::uint16_t port,
      core::ClientOptions options = {}, int timeout_ms = 5000);

  [[nodiscard]] core::ClientConnection& client() noexcept { return client_; }

  /// Pumps the exchange until @p done(client) holds. Fails on timeout; an
  /// exchange that ends first returns OK (inspect state()/result()).
  Status pump_until(const std::function<bool(core::ClientConnection&)>& done,
                    int timeout_ms = 5000);

  /// Clean close: GOAWAY, flush, wait for the exchange to settle.
  Status finish(int timeout_ms = 5000);

  [[nodiscard]] net::ExchangeDriver::State state() const noexcept {
    return driver_.state();
  }
  /// Valid once state() == kDone.
  [[nodiscard]] const net::ExchangeResult& result() const noexcept {
    return driver_.result();
  }

 private:
  SocketClient(Fd fd, core::ClientOptions options)
      : transport_(std::move(fd)),
        client_(std::move(options)),
        client_ref_(client_),
        driver_(transport_, client_ref_, transport_.wire()) {}

  SocketTransport transport_;
  core::ClientConnection client_;
  net::EndpointRef<core::ClientConnection> client_ref_;
  net::ExchangeDriver driver_;
};

}  // namespace h2r::netio
