#include "netio/event_loop.h"

#include <array>
#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace h2r::netio {

EpollLoop::EpollLoop() {
  epoll_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    status_ = errno_status(errno, "epoll_create1");
    return;
  }
  wake_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_.valid()) {
    status_ = errno_status(errno, "eventfd");
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) < 0) {
    status_ = errno_status(errno, "epoll_ctl(wake)");
  }
}

Status EpollLoop::add(int fd, IoHandler* handler, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return errno_status(errno, "epoll_ctl(add)");
  }
  handlers_[fd] = handler;
  return OkStatus();
}

Status EpollLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return errno_status(errno, "epoll_ctl(mod)");
  }
  return OkStatus();
}

void EpollLoop::remove(int fd) {
  // Ignore ctl errors: the fd may already be closed, which deregisters it
  // from epoll implicitly.
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

Result<int> EpollLoop::poll(int timeout_ms) {
  std::array<epoll_event, 64> events;
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return errno_status(errno, "epoll_wait");
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_.get()) {
      std::uint64_t drain = 0;
      while (::read(wake_.get(), &drain, sizeof(drain)) > 0) {
      }
      shutdown_requested_ = true;
      continue;
    }
    // Look the handler up per event: an earlier handler in this batch may
    // have removed this fd.
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    it->second->on_ready(events[i].events);
    ++dispatched;
  }
  return dispatched;
}

void EpollLoop::request_shutdown() noexcept {
  // write(2) on an eventfd is async-signal-safe — this is the SIGINT path.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_.get(), &one, sizeof(one));
}

}  // namespace h2r::netio
