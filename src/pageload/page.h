// Web page model for the server-push experiment (paper §V-F / Figure 3).
//
// A page is an HTML document plus dependent resources organized in
// discovery depths: depth-1 resources are referenced by the HTML, depth-2
// by depth-1 resources (fonts from CSS, XHR from JS), and so on. Server
// push can eliminate the discovery round trip of depth-1 resources that
// the site lists for pushing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace h2r::pageload {

struct PageResource {
  std::string path;
  std::size_t size_bytes = 0;
  int depth = 1;          ///< discovery depth (1 = referenced by the HTML)
  bool pushable = false;  ///< statically listed in the site's push config
};

struct Page {
  std::string host;
  std::size_t html_size = 0;
  std::vector<PageResource> resources;

  [[nodiscard]] int max_depth() const;
  [[nodiscard]] std::size_t total_bytes() const;

  /// Synthesizes a realistic page for @p host: 10-40 resources across 2-3
  /// depths, 0.5-4 MB total, with the depth-1 CSS/JS/image set pushable.
  static Page synthesize(const std::string& host, Rng& rng);
};

}  // namespace h2r::pageload
