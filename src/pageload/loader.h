// Page-load time simulator (paper §V-F / Figure 3).
//
// Models one visit over an HTTP/2 connection: TCP + TLS setup, the HTML
// fetch, then depth-by-depth resource loading where all resources of a
// depth share the downlink (request multiplexing). With push enabled, the
// pushable depth-1 resources start flowing right behind the HTML — the
// discovery round trip for them disappears, which is exactly the saving
// the paper (and [21]) attributes to push.
#pragma once

#include "net/path.h"
#include "pageload/page.h"
#include "util/rng.h"

namespace h2r::pageload {

struct LoadConditions {
  net::PathModel path;            ///< RTT model for the client-site path
  double bandwidth_kbps = 4'000;  ///< link downlink throughput
  bool push_enabled = true;
  /// Parallel TCP connections. HTTP/2 uses 1; HTTP/1.1-era sharding uses
  /// ~6. Matters only on lossy paths, where each connection is separately
  /// throughput-capped (the §VI single-connection concern).
  int connections = 1;
  /// Fraction of pushable resources already in the client cache. Pushed
  /// copies of cached resources are pure waste (§VI: "if the client
  /// already caches these web objects, the pushed data wastes the network
  /// bandwidth").
  double cached_fraction = 0.0;
};

/// Full outcome of one visit.
struct LoadResult {
  double plt_ms = 0;
  std::size_t pushed_bytes = 0;        ///< octets arriving via PUSH_PROMISE
  std::size_t wasted_push_bytes = 0;   ///< pushed despite being cached
};

/// Simulates one visit with full accounting.
LoadResult simulate_page_load(const Page& page, const LoadConditions& cond,
                              Rng& rng);

/// Milliseconds from navigation start to the last resource byte.
double simulate_page_load_ms(const Page& page, const LoadConditions& cond,
                             Rng& rng);

/// Convenience: 30-visit experiment as in §V-F, returning all samples.
std::vector<double> visit_repeatedly(const Page& page,
                                     const LoadConditions& cond, int visits,
                                     Rng& rng);

}  // namespace h2r::pageload
