#include "pageload/page.h"

#include <algorithm>

namespace h2r::pageload {

int Page::max_depth() const {
  int d = 0;
  for (const auto& r : resources) d = std::max(d, r.depth);
  return d;
}

std::size_t Page::total_bytes() const {
  std::size_t n = html_size;
  for (const auto& r : resources) n += r.size_bytes;
  return n;
}

Page Page::synthesize(const std::string& host, Rng& rng) {
  Page page;
  page.host = host;
  page.html_size = 20'000 + rng.next_below(80'000);

  const int depth1 = 8 + static_cast<int>(rng.next_below(20));
  const int depth2 = 2 + static_cast<int>(rng.next_below(10));
  const int depth3 = static_cast<int>(rng.next_below(5));

  auto add = [&](int depth, int index, std::size_t min_size,
                 std::size_t spread, bool pushable) {
    PageResource r;
    r.path = "/d" + std::to_string(depth) + "/res" + std::to_string(index);
    r.size_bytes = min_size + rng.next_below(spread);
    r.depth = depth;
    r.pushable = pushable;
    page.resources.push_back(std::move(r));
  };

  for (int i = 0; i < depth1; ++i) {
    // The typical push configuration covers the render-critical depth-1
    // assets (css/js/figures — §V-F: "they usually push objects like
    // javascript, css, figures").
    const bool pushable = i < depth1 / 2;
    add(1, i, 5'000, 120'000, pushable);
  }
  for (int i = 0; i < depth2; ++i) add(2, i, 2'000, 60'000, false);
  for (int i = 0; i < depth3; ++i) add(3, i, 1'000, 30'000, false);
  return page;
}

}  // namespace h2r::pageload
