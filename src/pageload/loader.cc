#include "pageload/loader.h"

#include <algorithm>

namespace h2r::pageload {
namespace {

double transfer_ms(std::size_t bytes, double bandwidth_kbps) {
  // kbps -> bytes per millisecond: kbps * 1000 / 8 / 1000.
  const double bytes_per_ms = bandwidth_kbps / 8.0;
  return static_cast<double>(bytes) / bytes_per_ms;
}

double rtt_sample(const net::PathModel& path, Rng& rng) {
  return path.sample_one_way(rng) * 2.0;
}

}  // namespace

LoadResult simulate_page_load(const Page& page, const LoadConditions& cond,
                              Rng& rng) {
  LoadResult result;
  // Effective downlink: each TCP connection is separately loss-capped
  // (Mathis); multiple connections multiply the cap but never the link.
  const int conns = std::max(1, cond.connections);
  const double per_conn =
      cond.path.tcp_throughput_kbps(cond.bandwidth_kbps / conns);
  const double bw = std::min(cond.bandwidth_kbps, per_conn * conns);

  // Connection setup: TCP handshake + TLS 1.2 handshake = 2 round trips.
  double t = rtt_sample(cond.path, rng) + rtt_sample(cond.path, rng);

  // HTML: one request round trip plus its transfer time.
  t += rtt_sample(cond.path, rng) + transfer_ms(page.html_size, bw);

  for (int depth = 1; depth <= page.max_depth(); ++depth) {
    std::size_t pushed_bytes = 0;
    std::size_t requested_bytes = 0;
    std::size_t index = 0;
    for (const auto& r : page.resources) {
      ++index;
      if (r.depth != depth) continue;
      // Deterministic per-resource cache membership for this visit
      // (Knuth-hash the index so warmth covers resources uniformly).
      const bool cached =
          r.pushable &&
          static_cast<double>((index * 2654435761u) % 1000) / 1000.0 <
              cond.cached_fraction;
      if (depth == 1 && cond.push_enabled && r.pushable) {
        // The server pushes regardless of the client cache — exactly the
        // waste the paper's §VI flags.
        pushed_bytes += r.size_bytes;
        result.pushed_bytes += r.size_bytes;
        if (cached) result.wasted_push_bytes += r.size_bytes;
      } else if (!cached) {
        requested_bytes += r.size_bytes;
      }
    }
    if (pushed_bytes == 0 && requested_bytes == 0) continue;

    // Pushed resources follow the HTML on the same connection, so their
    // transfer overlaps the discovery round trip the requested resources
    // still pay; once requests arrive, all streams of the level share the
    // downlink (request multiplexing).
    if (requested_bytes == 0) {
      t += transfer_ms(pushed_bytes, bw);
    } else {
      const double discovery = rtt_sample(cond.path, rng);
      const double pushed_during_discovery = transfer_ms(pushed_bytes, bw);
      t += std::max(discovery, pushed_during_discovery) +
           transfer_ms(requested_bytes, bw);
    }
  }
  result.plt_ms = t;
  return result;
}

double simulate_page_load_ms(const Page& page, const LoadConditions& cond,
                             Rng& rng) {
  return simulate_page_load(page, cond, rng).plt_ms;
}

std::vector<double> visit_repeatedly(const Page& page,
                                     const LoadConditions& cond, int visits,
                                     Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(visits));
  for (int i = 0; i < visits; ++i) {
    out.push_back(simulate_page_load_ms(page, cond, rng));
  }
  return out;
}

}  // namespace h2r::pageload
