// Small statistics toolkit for the measurement benches: empirical CDFs,
// value histograms, and fixed-point table rendering that mimics the paper's
// table layout.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace h2r {

/// Accumulates scalar samples and answers distribution queries.
class SampleSet {
 public:
  void add(double v) { samples_.push_back(v); }
  void add_all(const std::vector<double>& vs) {
    samples_.insert(samples_.end(), vs.begin(), vs.end());
  }
  /// Pools another set's samples into this one — merging per-thread latency
  /// distributions is exact (quantiles of the union), not an approximation.
  void merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Empirical quantile, q in [0,1]; linear interpolation between order
  /// statistics. Precondition: non-empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Fraction of samples <= x (the empirical CDF evaluated at x).
  [[nodiscard]] double cdf_at(double x) const;

  /// (value, cumulative fraction) pairs at each distinct sample — the full
  /// empirical CDF, ready to print as a figure series.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points() const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  mutable std::vector<double> samples_;
  void sort() const;
};

/// Counts exact values — the shape of the paper's Tables V/VI/VII, which
/// report how many sites advertised each distinct SETTINGS value.
class ValueCounter {
 public:
  void add(std::int64_t value) { ++counts_[value]; }
  void add(std::int64_t value, std::size_t n) { counts_[value] += n; }

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t count_of(std::int64_t value) const;
  [[nodiscard]] const std::map<std::int64_t, std::size_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::size_t> counts_;
};

/// Fixed-width ASCII table builder used by every bench to print rows the way
/// the paper's tables read.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an ASCII CDF plot (x ascending, y in [0,1]) — the benches' stand-in
/// for the paper's figure panels.
std::string render_ascii_cdf(
    const std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>& series,
    int width = 72, int height = 18, bool log_x = false);

/// Formats a count with thousands separators, as the paper prints them.
std::string with_commas(std::uint64_t v);

}  // namespace h2r
