#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace h2r {

void SampleSet::sort() const { std::sort(samples_.begin(), samples_.end()); }

double SampleSet::min() const {
  if (empty()) throw std::logic_error("SampleSet::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (empty()) throw std::logic_error("SampleSet::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::mean() const {
  if (empty()) throw std::logic_error("SampleSet::mean on empty set");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::quantile(double q) const {
  if (empty()) throw std::logic_error("SampleSet::quantile on empty set");
  if (q < 0 || q > 1) throw std::invalid_argument("quantile: q outside [0,1]");
  sort();
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (empty()) return 0.0;
  sort();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points() const {
  std::vector<std::pair<double, double>> pts;
  if (empty()) return pts;
  sort();
  const auto n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    // Emit one point per distinct value, at its final cumulative fraction.
    if (i + 1 == samples_.size() || samples_[i + 1] != samples_[i]) {
      pts.emplace_back(samples_[i], static_cast<double>(i + 1) / n);
    }
  }
  return pts;
}

std::size_t ValueCounter::total() const {
  std::size_t t = 0;
  for (const auto& [_, c] : counts_) t += c;
  return t;
}

std::size_t ValueCounter::count_of(std::int64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  std::ostringstream os;
  emit_row(header_, os);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

namespace {
double x_transform(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-9)) : x;
}
}  // namespace

std::string render_ascii_cdf(
    const std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>& series,
    int width, int height, bool log_x) {
  if (series.empty()) return "(no series)\n";
  double xmin = 1e300, xmax = -1e300;
  for (const auto& [_, pts] : series) {
    for (const auto& [x, y] : pts) {
      const double tx = x_transform(x, log_x);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
    }
  }
  if (xmin > xmax) return "(empty series)\n";
  if (xmax == xmin) xmax = xmin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  static constexpr char kMarks[] = "*o+x#@%&";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = kMarks[s % (sizeof(kMarks) - 1)];
    for (const auto& [x, y] : series[s].second) {
      const double tx = x_transform(x, log_x);
      int col = static_cast<int>((tx - xmin) / (xmax - xmin) * (width - 1));
      int row = static_cast<int>((1.0 - y) * (height - 1));
      col = std::clamp(col, 0, width - 1);
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }

  std::ostringstream os;
  os << "CDF  1.0 +" << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  for (int r = 0; r < height; ++r) {
    os << "         |" << grid[static_cast<std::size_t>(r)] << "|\n";
  }
  os << "     0.0 +" << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  os << "          " << (log_x ? "log10(x): " : "x: ") << xmin << " .. " << xmax
     << '\n';
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << "          [" << kMarks[s % (sizeof(kMarks) - 1)] << "] "
       << series[s].first << '\n';
  }
  return os.str();
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int since = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since == 3) {
      out.push_back(',');
      since = 0;
    }
    out.push_back(*it);
    ++since;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace h2r
