#include "util/status.h"

namespace h2r {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case StatusCode::kFlowControlError:
      return "FLOW_CONTROL_ERROR";
    case StatusCode::kCompressionError:
      return "COMPRESSION_ERROR";
    case StatusCode::kFrameSizeError:
      return "FRAME_SIZE_ERROR";
    case StatusCode::kRefused:
      return "REFUSED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{h2r::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() noexcept { return Status{}; }
Status InvalidArgumentError(std::string msg) {
  return Status{StatusCode::kInvalidArgument, std::move(msg)};
}
Status OutOfRangeError(std::string msg) {
  return Status{StatusCode::kOutOfRange, std::move(msg)};
}
Status ProtocolViolationError(std::string msg) {
  return Status{StatusCode::kProtocolError, std::move(msg)};
}
Status FlowControlViolationError(std::string msg) {
  return Status{StatusCode::kFlowControlError, std::move(msg)};
}
Status CompressionFailureError(std::string msg) {
  return Status{StatusCode::kCompressionError, std::move(msg)};
}
Status FrameSizeViolationError(std::string msg) {
  return Status{StatusCode::kFrameSizeError, std::move(msg)};
}
Status RefusedError(std::string msg) {
  return Status{StatusCode::kRefused, std::move(msg)};
}
Status UnavailableError(std::string msg) {
  return Status{StatusCode::kUnavailable, std::move(msg)};
}
Status InternalError(std::string msg) {
  return Status{StatusCode::kInternal, std::move(msg)};
}

}  // namespace h2r
