// Deterministic random number generation.
//
// Every stochastic choice in the simulation (corpus sampling, network jitter,
// workload shuffling) flows through Rng so a (seed, epoch) pair reproduces a
// scan bit-for-bit. SplitMix64 is used for seeding, xoshiro256** for streams.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace h2r {

/// SplitMix64 step — used to derive well-distributed sub-seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG: fast, high-quality, trivially copyable.
class Rng {
 public:
  /// Seeds the four lanes from @p seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed) noexcept {
    std::uint64_t sm = seed;
    for (auto& lane : s_) lane = splitmix64(sm);
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("next_below(0)");
    // Rejection sampling to kill modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("next_in: lo > hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

  /// Index drawn proportionally to non-negative @p weights.
  /// Precondition: at least one positive weight.
  std::size_t next_weighted(std::span<const double> weights);

  /// Derives an independent child generator (stable under reordering of
  /// sibling draws — used to give each simulated site its own stream).
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t sm = next_u64() ^ (salt * 0x9E3779B97F4A7C15ull);
    return Rng{splitmix64(sm)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace h2r
