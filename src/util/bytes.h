// Bounds-checked byte-stream reading and writing.
//
// Every wire structure in HTTP/2 is big-endian and fixed-width; these two
// small classes are the only place in the library that touches raw byte
// order, so frame and HPACK codecs stay free of shifting arithmetic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace h2r {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian integers and raw octets to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Wraps an existing buffer; further writes append to it.
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  /// Ensures capacity for @p n more octets — codecs that know a frame's
  /// size up front call this once instead of growing per write. Grows
  /// geometrically: reserving the exact size per appended frame would
  /// reallocate (and copy) the whole buffer on every append.
  void reserve(std::size_t n) {
    const std::size_t want = buf_.size() + n;
    if (want > buf_.capacity()) {
      buf_.reserve(std::max(want, buf_.capacity() * 2));
    }
  }

  void write_u8(std::uint8_t v) { buf_.push_back(v); }

  void write_u16(std::uint16_t v) {
    const std::uint8_t be[2] = {static_cast<std::uint8_t>(v >> 8),
                                static_cast<std::uint8_t>(v)};
    buf_.insert(buf_.end(), be, be + sizeof be);
  }

  /// 24-bit length field used by the HTTP/2 frame header. Top byte of @p v
  /// must be zero (checked).
  void write_u24(std::uint32_t v);

  void write_u32(std::uint32_t v) {
    const std::uint8_t be[4] = {
        static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
    buf_.insert(buf_.end(), be, be + sizeof be);
  }

  void write_u64(std::uint64_t v) {
    const std::uint8_t be[8] = {
        static_cast<std::uint8_t>(v >> 56), static_cast<std::uint8_t>(v >> 48),
        static_cast<std::uint8_t>(v >> 40), static_cast<std::uint8_t>(v >> 32),
        static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
    buf_.insert(buf_.end(), be, be + sizeof be);
  }

  void write_bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void write_string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends @p n uninitialized octets and returns a writable span over
  /// them, so generators can synthesize payloads in place instead of
  /// building a temporary buffer and copying it in. The span is valid only
  /// until the next write.
  [[nodiscard]] std::span<std::uint8_t> extend(std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    return {buf_.data() + at, n};
  }

  /// Appends @p n zero octets (frame padding) in one grow.
  void write_zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }

  /// Moves the accumulated buffer out; the writer is empty afterwards.
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Recycles transport buffers between exchange rounds. An engine or client
/// drains its output as a moved-out Bytes; handing the drained vector back
/// via release() lets the next round's output writer start with the old
/// capacity instead of reallocating from scratch on every frame flight.
class BufferPool {
 public:
  /// A cleared buffer, with whatever capacity a released one carried.
  [[nodiscard]] Bytes acquire() {
    if (spare_.empty()) return {};
    Bytes b = std::move(spare_.back());
    spare_.pop_back();
    b.clear();
    return b;
  }

  /// Returns a drained buffer to the pool (keeps at most a few).
  void release(Bytes b) {
    if (spare_.size() < kMaxSpare && b.capacity() > 0) {
      spare_.push_back(std::move(b));
    }
  }

 private:
  static constexpr std::size_t kMaxSpare = 4;
  std::vector<Bytes> spare_;
};

/// Reads big-endian integers and octet runs from a non-owning view.
/// All reads are bounds-checked and return Status/Result on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  [[nodiscard]] Result<std::uint8_t> read_u8();
  [[nodiscard]] Result<std::uint16_t> read_u16();
  [[nodiscard]] Result<std::uint32_t> read_u24();
  [[nodiscard]] Result<std::uint32_t> read_u32();

  /// Returns a view over the next @p n octets and advances past them.
  [[nodiscard]] Result<std::span<const std::uint8_t>> read_bytes(std::size_t n);

  /// Copies the next @p n octets into a string.
  [[nodiscard]] Result<std::string> read_string(std::size_t n);

  /// Advances without delivering data (e.g. skipping frame padding).
  [[nodiscard]] Status skip(std::size_t n);

  /// Peeks the next octet without consuming it.
  [[nodiscard]] Result<std::uint8_t> peek_u8() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex rendering ("dead beef"-style, no separator) for tests/logs.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parses a hex string (whitespace ignored). Returns error on odd length or
/// non-hex characters.
Result<Bytes> from_hex(std::string_view hex);

/// Convenience: string literal -> byte vector.
Bytes bytes_of(std::string_view s);

}  // namespace h2r
