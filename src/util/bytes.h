// Bounds-checked byte-stream reading and writing.
//
// Every wire structure in HTTP/2 is big-endian and fixed-width; these two
// small classes are the only place in the library that touches raw byte
// order, so frame and HPACK codecs stay free of shifting arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace h2r {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian integers and raw octets to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Wraps an existing buffer; further writes append to it.
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  void write_u8(std::uint8_t v) { buf_.push_back(v); }

  void write_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// 24-bit length field used by the HTTP/2 frame header. Top byte of @p v
  /// must be zero (checked).
  void write_u24(std::uint32_t v);

  void write_u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void write_u64(std::uint64_t v) {
    write_u32(static_cast<std::uint32_t>(v >> 32));
    write_u32(static_cast<std::uint32_t>(v));
  }

  void write_bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void write_string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }

  /// Moves the accumulated buffer out; the writer is empty afterwards.
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads big-endian integers and octet runs from a non-owning view.
/// All reads are bounds-checked and return Status/Result on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  [[nodiscard]] Result<std::uint8_t> read_u8();
  [[nodiscard]] Result<std::uint16_t> read_u16();
  [[nodiscard]] Result<std::uint32_t> read_u24();
  [[nodiscard]] Result<std::uint32_t> read_u32();

  /// Returns a view over the next @p n octets and advances past them.
  [[nodiscard]] Result<std::span<const std::uint8_t>> read_bytes(std::size_t n);

  /// Copies the next @p n octets into a string.
  [[nodiscard]] Result<std::string> read_string(std::size_t n);

  /// Advances without delivering data (e.g. skipping frame padding).
  [[nodiscard]] Status skip(std::size_t n);

  /// Peeks the next octet without consuming it.
  [[nodiscard]] Result<std::uint8_t> peek_u8() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex rendering ("dead beef"-style, no separator) for tests/logs.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parses a hex string (whitespace ignored). Returns error on odd length or
/// non-hex characters.
Result<Bytes> from_hex(std::string_view hex);

/// Convenience: string literal -> byte vector.
Bytes bytes_of(std::string_view s);

}  // namespace h2r
