// Strict numeric parsing for CLI flags and environment knobs.
//
// atoi/atof would silently read "2x10" as 2 and "abc" as 0; a typo'd knob
// must not quietly reshape a bench run or bind a server to port 0. These
// helpers accept a value only when the *entire* string parses, and return
// nothing otherwise — the caller decides between warn-and-default (env
// vars, see bench/bench_util.h) and reject-and-exit (argv, see apps/).
#pragma once

#include <cstdlib>
#include <optional>

namespace h2r {

/// The whole of @p s as a base-10 long, or nothing. Leading whitespace and
/// a sign are accepted (strtol's contract); trailing garbage is not.
[[nodiscard]] inline std::optional<long> strict_long(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return std::nullopt;
  return v;
}

/// The whole of @p s as a double, or nothing.
[[nodiscard]] inline std::optional<double> strict_double(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return std::nullopt;
  return v;
}

/// strict_long constrained to [lo, hi] — ports, counts, millisecond knobs.
[[nodiscard]] inline std::optional<long> strict_long_in(const char* s, long lo,
                                                        long hi) {
  const auto v = strict_long(s);
  if (!v.has_value() || *v < lo || *v > hi) return std::nullopt;
  return v;
}

}  // namespace h2r
