#include "util/rng.h"

namespace h2r {

std::size_t Rng::next_weighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("next_weighted: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("next_weighted: zero total");
  double draw = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

}  // namespace h2r
