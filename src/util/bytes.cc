#include "util/bytes.h"

#include <cctype>
#include <stdexcept>

namespace h2r {

void ByteWriter::write_u24(std::uint32_t v) {
  if (v > 0xFFFFFFu) {
    throw std::invalid_argument("write_u24: value exceeds 24 bits");
  }
  const std::uint8_t be[3] = {static_cast<std::uint8_t>(v >> 16),
                              static_cast<std::uint8_t>(v >> 8),
                              static_cast<std::uint8_t>(v)};
  buf_.insert(buf_.end(), be, be + sizeof be);
}

Result<std::uint8_t> ByteReader::read_u8() {
  if (remaining() < 1) return OutOfRangeError("read_u8 past end");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::read_u16() {
  if (remaining() < 2) return OutOfRangeError("read_u16 past end");
  auto hi = data_[pos_];
  auto lo = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> ByteReader::read_u24() {
  if (remaining() < 3) return OutOfRangeError("read_u24 past end");
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

Result<std::uint32_t> ByteReader::read_u32() {
  if (remaining() < 4) return OutOfRangeError("read_u32 past end");
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<std::span<const std::uint8_t>> ByteReader::read_bytes(std::size_t n) {
  if (remaining() < n) return OutOfRangeError("read_bytes past end");
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

Result<std::string> ByteReader::read_string(std::size_t n) {
  H2R_ASSIGN_OR_RETURN(auto view, read_bytes(n));
  return std::string(view.begin(), view.end());
}

Status ByteReader::skip(std::size_t n) {
  if (remaining() < n) return OutOfRangeError("skip past end");
  pos_ += n;
  return OkStatus();
}

Result<std::uint8_t> ByteReader::peek_u8() const {
  if (remaining() < 1) return OutOfRangeError("peek_u8 past end");
  return data_[pos_];
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Result<Bytes> from_hex(std::string_view hex) {
  Bytes out;
  int nibble = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return InvalidArgumentError("from_hex: non-hex character");
    }
    if (nibble < 0) {
      nibble = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((nibble << 4) | v));
      nibble = -1;
    }
  }
  if (nibble >= 0) return InvalidArgumentError("from_hex: odd digit count");
  return out;
}

Bytes bytes_of(std::string_view s) { return Bytes(s.begin(), s.end()); }

}  // namespace h2r
