// Status and Result<T>: recoverable-error plumbing used across the library.
//
// Protocol parsing and remote-endpoint interaction fail routinely (truncated
// frames, HPACK bombs, windows overflowing 2^31-1); those are *data* errors,
// not programmer errors, so they travel through Result<T> rather than
// exceptions. Exceptions remain reserved for precondition violations.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace h2r {

/// Coarse classification of a failure. Mirrors the handful of distinctions
/// the callers actually branch on; detail goes in the message.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something out of contract
  kOutOfRange,        ///< read past end / value outside representable range
  kProtocolError,     ///< peer violated RFC 7540/7541
  kFlowControlError,  ///< window accounting violated (RFC 7540 §6.9)
  kCompressionError,  ///< HPACK context desynchronized (RFC 7541 §2.3.3)
  kFrameSizeError,    ///< frame length outside advertised bounds
  kRefused,           ///< endpoint declined (e.g. max streams exceeded)
  kUnavailable,       ///< transport closed / endpoint gone
  kInternal,          ///< invariant broken on our side
};

/// Human-readable name for a StatusCode ("OK", "PROTOCOL_ERROR", ...).
std::string_view to_string(StatusCode code) noexcept;

/// Value-type error carrier: a code plus an explanatory message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with @p code and diagnostic @p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "CODE: message" rendering for logs and test failures.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Shorthand constructors, mirroring absl::*Error style.
Status OkStatus() noexcept;
Status InvalidArgumentError(std::string msg);
Status OutOfRangeError(std::string msg);
Status ProtocolViolationError(std::string msg);
Status FlowControlViolationError(std::string msg);
Status CompressionFailureError(std::string msg);
Status FrameSizeViolationError(std::string msg);
Status RefusedError(std::string msg);
Status UnavailableError(std::string msg);
Status InternalError(std::string msg);

/// Result<T>: either a value or a non-OK Status. Move-friendly; deref of an
/// errored Result throws std::logic_error (programmer error, not data error).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value — enables `return parsed_frame;`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from error — enables `return ProtocolViolationError(...)`.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) {
      throw std::logic_error("Result<T> constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  /// Status of the result; OkStatus() when a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? OkStatus() : std::get<Status>(rep_);
  }

  /// Access the held value. Precondition: ok().
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Returns the value or @p fallback when errored.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Result accessed while holding error: " +
                             std::get<Status>(rep_).to_string());
    }
  }

  std::variant<T, Status> rep_;
};

/// Propagate-on-error helpers (statement-expression free, portable).
#define H2R_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::h2r::Status h2r_status_ = (expr);              \
    if (!h2r_status_.ok()) return h2r_status_;       \
  } while (false)

#define H2R_ASSIGN_OR_RETURN(lhs, rexpr)             \
  H2R_ASSIGN_OR_RETURN_IMPL_(                        \
      H2R_STATUS_CONCAT_(h2r_result_, __LINE__), lhs, rexpr)

#define H2R_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr)  \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define H2R_STATUS_CONCAT_INNER_(a, b) a##b
#define H2R_STATUS_CONCAT_(a, b) H2R_STATUS_CONCAT_INNER_(a, b)

}  // namespace h2r
