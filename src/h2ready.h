// Umbrella header for the h2ready library.
//
// Pulls in the complete public API: the HTTP/2 + HPACK protocol stack, the
// behaviour-profiled server engine, the H2Scope probe suite, the synthetic
// Alexa corpus and scanner, and the page-load simulator. Include this when
// prototyping; production code should include the specific module headers.
#pragma once

// Protocol substrate.
#include "h2/constants.h"          // IWYU pragma: export
#include "h2/flow_control.h"       // IWYU pragma: export
#include "h2/frame.h"              // IWYU pragma: export
#include "h2/frame_codec.h"        // IWYU pragma: export
#include "h2/priority_tree.h"      // IWYU pragma: export
#include "h2/settings.h"           // IWYU pragma: export
#include "h2/stream.h"             // IWYU pragma: export
#include "hpack/decoder.h"         // IWYU pragma: export
#include "hpack/encoder.h"         // IWYU pragma: export
#include "hpack/huffman.h"         // IWYU pragma: export

// Simulated network.
#include "net/alpn.h"              // IWYU pragma: export
#include "net/clock.h"             // IWYU pragma: export
#include "net/path.h"              // IWYU pragma: export
#include "net/transport.h"         // IWYU pragma: export
#include "net/upgrade.h"           // IWYU pragma: export

// Server engine and profiles.
#include "server/engine.h"         // IWYU pragma: export
#include "server/profile.h"        // IWYU pragma: export
#include "server/site.h"           // IWYU pragma: export

// H2Scope.
#include "core/client.h"           // IWYU pragma: export
#include "core/probes.h"           // IWYU pragma: export
#include "core/report.h"           // IWYU pragma: export
#include "core/session.h"          // IWYU pragma: export

// Measurement campaign.
#include "corpus/marginals.h"      // IWYU pragma: export
#include "corpus/population.h"     // IWYU pragma: export
#include "corpus/scan.h"           // IWYU pragma: export
#include "pageload/loader.h"       // IWYU pragma: export
#include "pageload/page.h"         // IWYU pragma: export
