// The H2Scope probe suite — one function per measurement method of
// Section III of the paper, each returning a structured result.
//
// Every probe opens a fresh connection to the target (as the paper's scans
// do) so no probe contaminates another's HPACK or flow-control state.
// core/session.h coalesces the probes that don't need that isolation onto
// one shared connection per site; these free functions remain both the
// fresh-connection path and the reference the coalesced scheduler must
// match observation-for-observation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "core/client.h"
#include "core/task.h"
#include "h2/constants.h"
#include "net/alpn.h"
#include "net/path.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"
#include "util/rng.h"

namespace h2r::core {

/// Fault injection applied to every connection a probe opens against one
/// target (see net::FaultyTransport). Off by default: the plain scan runs
/// over the perfect lockstep pump, bit-identical to the historical one.
struct FaultConfig {
  bool enabled = false;
  /// Base seed; each connection derives its own FaultPlan from
  /// (seed, connection ordinal), so a probe sequence is deterministic.
  std::uint64_t seed = 0;
  /// Per-connection fault probability (net::fault_probability folds the
  /// site's PathModel::loss_rate into this before it lands here).
  double probability = 0.0;
};

/// Bounded fresh-connection retry for probes on faulted transports: a probe
/// whose attempt hit a transport fault or deadline is re-run from scratch
/// (fresh connections, fresh FaultPlans) with simulated backoff.
struct RetryPolicy {
  int max_attempts = 2;  ///< total attempts including the first
  double backoff_base_ms = 50.0;
  double backoff_multiplier = 2.0;
};

/// One scan target: a (virtual) host with its server behaviour, content,
/// and network path.
struct Target {
  std::string host;
  server::ServerProfile profile;
  server::Site site;
  net::PathModel path;
  /// Whether this host offers "h2" at all (non-HTTP/2 corpus sites don't).
  bool offers_h2 = true;
  /// Optional H2Wiretap sink shared by every connection (client and server
  /// side) a probe opens against this target. Null = tracing off.
  trace::Recorder* recorder = nullptr;
  /// Per-exchange deadline every probe runs under; the defaults match the
  /// historical round cap, plus a byte cap generous enough that only a
  /// runaway conversation trips it.
  net::ExchangeLimits limits{.max_rounds = 4096,
                             .max_bytes = 256ull * 1024 * 1024};
  /// Delivery-fault injection for every connection against this target.
  FaultConfig faults;
  /// Outcome accumulator shared by every transport this target creates
  /// (scan-owned, one per site). Null = no accounting.
  net::ExchangeLedger* ledger = nullptr;

  Target() = default;
  /// Copying clears the cached shared profile/site so a copy that then
  /// tweaks `profile` (probe_concurrency_limit does) serves the tweaked
  /// values. The cache refills on the copy's first make_server().
  Target(const Target& other);
  Target& operator=(const Target& other);
  Target(Target&&) = default;
  Target& operator=(Target&&) = default;

  /// Builds a server for the next connection. The profile and site are
  /// shared with the engine (cached on first call), not deep-copied — so
  /// don't mutate the public `profile` / `site` fields after the first
  /// make_server(); copy the Target instead.
  [[nodiscard]] server::Http2Server make_server() const {
    return server::Http2Server(shared_profile(), shared_site(),
                               server::Http2Server::StartMode::kTls, recorder);
  }

  /// Rewinds @p server into a fresh first connection against this target —
  /// the scan's per-worker engine slot serves a different site each time
  /// without reconstructing (see core::SessionScratch).
  void reset_server(server::Http2Server& server) const {
    server.reset(shared_profile(), shared_site(),
                 server::Http2Server::StartMode::kTls, recorder);
  }

  /// ClientOptions pre-wired to this target's recorder. Probes reason about
  /// DATA frame *sizes* only, so response payload octets are not retained.
  [[nodiscard]] ClientOptions client_options(ClientOptions opts = {}) const {
    opts.recorder = recorder;
    opts.retain_data_payloads = false;
    return opts;
  }

  /// The transport for the next connection against this target: lockstep
  /// when faults are off, otherwise a FaultyTransport whose plan is derived
  /// from (faults.seed, connection ordinal). One transport models one
  /// connection — probes that reuse a connection reuse its transport.
  [[nodiscard]] std::unique_ptr<net::Transport> make_transport() const;

  /// A target wired to the paper's testbed content for @p profile.
  static Target testbed(server::ServerProfile profile);

 private:
  [[nodiscard]] const std::shared_ptr<const server::ServerProfile>&
  shared_profile() const;
  [[nodiscard]] const std::shared_ptr<const server::Site>& shared_site() const;

  /// Ordinal of the next connection, for per-connection fault seeds.
  /// Mutable: handing out a transport doesn't change what the target *is*,
  /// and probes receive `const Target&` everywhere.
  mutable std::uint64_t transport_seq_ = 0;
  /// Lazily built shared copies of `profile` / `site` handed to every
  /// engine this target spawns (one deep copy per site, not per
  /// connection). Cleared by copy so stale values never leak.
  mutable std::shared_ptr<const server::ServerProfile> cached_profile_;
  mutable std::shared_ptr<const server::Site> cached_site_;
};

/// Runs @p fn — a probe body that opens fresh connections against
/// @p target — up to policy.max_attempts times, retrying (with simulated
/// backoff booked into the target's ledger) whenever the attempt hit a
/// transport fault or deadline. Returns the last attempt's result. With no
/// ledger or no faults this collapses to a single plain call.
template <typename Fn>
auto probe_with_retry(const Target& target, const RetryPolicy& policy,
                      Fn&& fn) {
  net::ExchangeLedger* ledger = target.ledger;
  double backoff = policy.backoff_base_ms;
  for (int attempt = 1;; ++attempt) {
    if (ledger != nullptr) ledger->begin_attempt();
    auto result = fn();
    if (ledger == nullptr || !ledger->attempt_faulted() ||
        attempt >= policy.max_attempts) {
      if (ledger != nullptr) ledger->settle_attempt();
      return result;
    }
    // The attempt was degraded by the transport: book the retry and go
    // again on fresh connections (the failed attempt's flags are dropped —
    // only the final attempt's outcome classifies the site).
    ledger->note_retry(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

/// probe_with_retry for coroutine probes: @p make_task builds a fresh
/// Task<R> per attempt. Identical bookkeeping to the sync wrapper, plus the
/// backoff *parks* the task (ParkFor) so an event loop can run other sites
/// while this one backs off — under run_sync the park is free, so the two
/// wrappers stay result- and ledger-identical.
template <typename Fn>
auto probe_with_retry_task(const Target& target, RetryPolicy policy,
                           Fn make_task)
    -> Task<typename std::invoke_result_t<Fn&>::value_type> {
  net::ExchangeLedger* ledger = target.ledger;
  double backoff = policy.backoff_base_ms;
  for (int attempt = 1;; ++attempt) {
    if (ledger != nullptr) ledger->begin_attempt();
    auto result = co_await make_task();
    if (ledger == nullptr || !ledger->attempt_faulted() ||
        attempt >= policy.max_attempts) {
      if (ledger != nullptr) ledger->settle_attempt();
      co_return result;
    }
    ledger->note_retry(backoff);
    co_await ParkFor{static_cast<int>(backoff)};
    backoff *= policy.backoff_multiplier;
  }
}

// ------------------------------------------------------------ negotiation

/// Section IV-A: can an HTTP/2 connection be established, and via which
/// TLS extension?
struct NegotiationProbeResult {
  bool alpn_h2 = false;  ///< "h2" selected via ALPN
  bool npn_h2 = false;   ///< "h2" selectable via NPN
  bool h2_established = false;
};

NegotiationProbeResult probe_negotiation(const Target& target);

/// Section IV-A's other connection path: cleartext HTTP/1.1 Upgrade to h2c.
struct H2cProbeResult {
  bool switched = false;       ///< 101 Switching Protocols
  std::string status_line;     ///< what the server actually answered
};

H2cProbeResult probe_h2c_upgrade(const Target& target);

// ---------------------------------------------------------------- settings

/// Section V-C: the SETTINGS values a server announces. nullopt = the
/// parameter was absent from the SETTINGS frame ("NULL" in Tables V-VII).
struct SettingsProbeResult {
  bool headers_received = false;  ///< did a request complete at all
  std::size_t settings_entry_count = 0;  ///< 0 = "NULL" (empty SETTINGS)
  std::optional<std::uint32_t> header_table_size;
  std::optional<std::uint32_t> max_concurrent_streams;
  std::optional<std::uint32_t> initial_window_size;
  std::optional<std::uint32_t> max_frame_size;
  std::optional<std::uint32_t> max_header_list_size;
  /// Connection WINDOW_UPDATE received before any request (Nginx idiom).
  std::uint64_t preemptive_window_bonus = 0;
  std::string server_header;  ///< value of the `server` response header
};

SettingsProbeResult probe_settings(const Target& target);

/// Every probe the scan runs per site also exists as a *_task coroutine:
/// the same body with each Transport::run rewritten as co_await
/// AwaitExchange, so a faulted transport's stall parks the whole probe
/// sequence instead of spinning its pump. The sync function is
/// run_sync(*_task(...)) — one implementation, two drivers. Probes the
/// scan doesn't multiplex (multiplexing, concurrency, ping, h2c) keep
/// plain sync bodies; Transport::run services parks inline for them.
Task<SettingsProbeResult> probe_settings_task(const Target& target);

// ------------------------------------------------------------ multiplexing

/// Section III-A1: N parallel downloads of large objects; multiplexing is
/// inferred from response interleaving.
struct MultiplexingProbeResult {
  bool supported = false;    ///< DATA frames of distinct streams interleaved
  int streams_completed = 0;
  int interleave_switches = 0;  ///< stream changes across the DATA sequence
};

MultiplexingProbeResult probe_multiplexing(const Target& target,
                                           int num_streams = 4);

/// Section V-A (last paragraph): behaviour when the *server* caps
/// MAX_CONCURRENT_STREAMS at 0 or 1: excess requests should be refused.
struct ConcurrencyLimitProbeResult {
  bool refused_when_zero = false;  ///< RST_STREAM on first request at cap 0
  bool refused_second_when_one = false;  ///< RST on 2nd concurrent at cap 1
};

ConcurrencyLimitProbeResult probe_concurrency_limit(const Target& target);

// ------------------------------------------------------------ flow control

/// Section III-B1: does SETTINGS_INITIAL_WINDOW_SIZE = Sframe bound the
/// response DATA frame size?
enum class SmallWindowOutcome : std::uint8_t {
  kRespectsWindow,  ///< first DATA payload == Sframe
  kZeroLengthData,  ///< zero-length DATA received
  kNoResponse,      ///< neither HEADERS nor DATA (LiteSpeed-like)
  kOversized,       ///< DATA larger than the window (violation)
};

std::string_view to_string(SmallWindowOutcome o) noexcept;

struct DataFrameControlResult {
  SmallWindowOutcome outcome = SmallWindowOutcome::kNoResponse;
  std::size_t first_data_size = 0;
  bool headers_received = false;
};

DataFrameControlResult probe_data_frame_control(const Target& target,
                                                std::uint32_t sframe = 1);
Task<DataFrameControlResult> probe_data_frame_control_task(
    const Target& target, std::uint32_t sframe = 1);

/// Section III-B2: with SETTINGS_INITIAL_WINDOW_SIZE = 0 the server must
/// still send HEADERS (flow control governs DATA only).
struct ZeroWindowHeadersResult {
  bool headers_received = false;
  bool data_received = false;  ///< any DATA would be a violation
};

ZeroWindowHeadersResult probe_zero_window_headers(const Target& target);
Task<ZeroWindowHeadersResult> probe_zero_window_headers_task(
    const Target& target);

/// Sections III-B3/III-B4: how the server reacts to a zero or overflowing
/// WINDOW_UPDATE, on stream and connection scope.
enum class UpdateReaction : std::uint8_t {
  kIgnored,
  kRstStream,
  kGoaway,
  kGoawayWithDebug,
};

std::string_view to_string(UpdateReaction r) noexcept;

/// How the server reacted on @p client: a received GOAWAY (with or without
/// debug data, copied to @p debug_out when given) wins over an RST_STREAM
/// on @p stream_id; anything else is kIgnored. Shared by the WINDOW_UPDATE
/// and self-dependency probes and by the coalesced ProbeSession.
UpdateReaction classify_update_reaction(const ClientConnection& client,
                                        std::optional<std::uint32_t> stream_id,
                                        std::string* debug_out = nullptr);

struct WindowUpdateProbeResult {
  UpdateReaction zero_on_stream = UpdateReaction::kIgnored;
  UpdateReaction zero_on_connection = UpdateReaction::kIgnored;
  UpdateReaction large_on_stream = UpdateReaction::kIgnored;
  UpdateReaction large_on_connection = UpdateReaction::kIgnored;
  std::string zero_debug_data;  ///< GOAWAY debug text, when provided
};

WindowUpdateProbeResult probe_window_update_reactions(const Target& target);
Task<WindowUpdateProbeResult> probe_window_update_reactions_task(
    const Target& target);

// ---------------------------------------------------------------- priority

/// Section III-C Algorithm 1. The verdicts mirror §V-E1: priority order
/// inferred from the last DATA frame per stream, from the first, and from
/// both.
struct PriorityProbeResult {
  bool ran = false;  ///< false when context preparation failed
  bool pass_by_last_data = false;
  bool pass_by_first_data = false;
  bool pass_by_both = false;
  /// HEADERS for the probe requests arrived while the connection window
  /// was exhausted (some servers withhold them, §V-D2 note).
  bool headers_during_zero_window = false;

  [[nodiscard]] bool passes() const noexcept { return ran && pass_by_both; }
};

PriorityProbeResult probe_priority_mechanism(const Target& target);
Task<PriorityProbeResult> probe_priority_mechanism_task(const Target& target);

/// Algorithm 1's body, from the drain step on. Assumes @p client already
/// has huge (2^31-1) stream windows planted, both automatic window updates
/// off, and a connection send window holding exactly the 65,535-octet
/// default (the drain check verifies this). Shared by
/// probe_priority_mechanism (fresh connection, windows via the preface
/// SETTINGS) and ProbeSession (streams of the site's shared connection).
PriorityProbeResult run_priority_rounds(ClientConnection& client,
                                        server::Http2Server& server,
                                        net::Transport& transport,
                                        const net::ExchangeLimits& limits);
Task<PriorityProbeResult> run_priority_rounds_task(
    ClientConnection& client, server::Http2Server& server,
    net::Transport& transport, net::ExchangeLimits limits);

/// Section III-C2: PRIORITY frame making a stream depend on itself.
struct SelfDependencyProbeResult {
  UpdateReaction reaction = UpdateReaction::kIgnored;
};

SelfDependencyProbeResult probe_self_dependency(const Target& target);
Task<SelfDependencyProbeResult> probe_self_dependency_task(
    const Target& target);

// ------------------------------------------------------------------ push

/// Section III-D: enable push, fetch the front page, watch for
/// PUSH_PROMISE.
struct PushProbeResult {
  bool push_received = false;
  std::vector<std::string> pushed_paths;
  std::size_t pushed_bytes = 0;  ///< DATA received on promised streams
};

PushProbeResult probe_server_push(const Target& target,
                                  const std::string& page = "/");
Task<PushProbeResult> probe_server_push_task(const Target& target,
                                             std::string page = "/");

// ------------------------------------------------------------------ hpack

/// Section III-E: H identical requests; compression ratio r of Equation 1.
struct HpackProbeResult {
  bool ran = false;
  double ratio = 1.0;  ///< r = sum(S_i) / (S_1 * H)
  std::vector<std::size_t> header_sizes;
};

HpackProbeResult probe_hpack_ratio(const Target& target, int h = 8,
                                   const std::string& path = "/");
Task<HpackProbeResult> probe_hpack_ratio_task(const Target& target, int h = 8,
                                              std::string path = "/");

// ------------------------------------------------------------------- ping

/// Section III-F: RTT via HTTP/2 PING compared with ICMP, TCP handshake,
/// and HTTP/1.1 request timing.
struct PingProbeResult {
  bool supported = false;  ///< ACK with identical payload received
  std::vector<double> h2_ping_ms;
  std::vector<double> icmp_ms;
  std::vector<double> tcp_handshake_ms;
  std::vector<double> http11_ms;
};

PingProbeResult probe_ping(const Target& target, int samples, Rng& rng);

}  // namespace h2r::core
