// Lockstep transport between a ClientConnection and an Http2Server.
//
// The probes are synchronous: a "round" ships all pending client bytes to
// the server, then all pending server bytes back. Exchanges run until both
// directions are idle (or a round cap is hit, which indicates a bug).
#pragma once

#include "core/client.h"
#include "server/engine.h"

namespace h2r::core {

/// Pumps bytes both ways until quiescent. Returns the number of rounds run.
int run_exchange(ClientConnection& client, server::Http2Server& server,
                 int max_rounds = 4096);

}  // namespace h2r::core
