// Coalesced probe scheduling: one connection per site, many probes.
//
// The paper's scanner opens a fresh connection per measurement so no probe
// contaminates another's HPACK or flow-control state. Most probes don't
// actually need that isolation — they only need to *start* from a known
// state. ProbeSession keeps a single ClientConnection open against a
// target and runs every probe whose semantics allow it as streams over
// that connection, restoring the relevant state (window stances, SETTINGS)
// between phases. Probes that genuinely require a pristine connection —
// negotiation, the zero/tiny-window probes, the WINDOW_UPDATE reaction
// probes — keep their fresh-connection implementations in probes.h; the
// needs_fresh_connection() trait records which is which.
//
// Equivalence is a hard requirement, not an aspiration: a coalesced scan
// must produce a ScanReport bitwise identical to the sequential one
// (tests/scan_coalesce_test.cc asserts this). Whenever the shared
// connection can't reproduce a fresh probe's observations — it died, a
// server reaction poisoned it, or a precondition check failed — the
// session falls back to the fresh-connection probe for that measurement
// and stops sharing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/client.h"
#include "core/probes.h"
#include "net/transport.h"
#include "server/engine.h"

namespace h2r::core {

/// The probes of Section III, as schedulable units.
enum class ProbeKind : std::uint8_t {
  kNegotiation,
  kH2cUpgrade,
  kSettings,
  kMultiplexing,
  kConcurrencyLimit,
  kDataFrameControl,
  kZeroWindowHeaders,
  kWindowUpdateReactions,
  kPriority,
  kSelfDependency,
  kPush,
  kHpackRatio,
  kPing,
};

/// True when a probe's method only makes sense on a connection of its own:
/// it negotiates the connection itself, plants SETTINGS that must be in the
/// *preface* (tiny/zero initial windows), provokes reactions that kill the
/// connection mid-measurement, or measures connection-scoped timing. The
/// remaining probes start from the default stance a shared connection can
/// restore, so ProbeSession runs them as streams of one connection.
[[nodiscard]] constexpr bool needs_fresh_connection(ProbeKind kind) noexcept {
  switch (kind) {
    case ProbeKind::kSettings:
    case ProbeKind::kPriority:
    case ProbeKind::kSelfDependency:
    case ProbeKind::kPush:
    case ProbeKind::kHpackRatio:
      return false;
    default:
      return true;
  }
}

/// Reusable endpoint slots: the scan's per-worker scratch hands the same
/// client and engine to every site's ProbeSession, which rewinds them with
/// reset() instead of reconstructing (keeping their transport buffers and
/// the engine's shared profile/site machinery warm). A default-constructed
/// scratch simply means "allocate on first use".
struct SessionScratch {
  std::optional<ClientConnection> client;
  std::optional<server::Http2Server> server;
};

class ProbeSession {
 public:
  struct Options {
    int hpack_h = 8;  ///< H of Equation 1; also the baseline request count
    /// When false the baseline makes a single request (enough for the
    /// settings and push observations) and hpack_ratio() falls back to the
    /// fresh-connection probe. The scan sets this from its per-family
    /// Figure 4/5 filter so non-HPACK sites don't pay for H requests.
    bool expect_hpack = true;
  };

  /// @p target must outlive the session. @p scratch may be null (the
  /// session then owns its endpoints privately).
  explicit ProbeSession(const Target& target);
  ProbeSession(const Target& target, Options options,
               SessionScratch* scratch = nullptr);

  // Each accessor runs its probe on first call (lazily establishing the
  // shared connection) and is safe to call at most once per session; all
  // return values match the corresponding probes.h free function on this
  // target, field for field.
  [[nodiscard]] SettingsProbeResult settings();
  [[nodiscard]] PriorityProbeResult priority();
  [[nodiscard]] SelfDependencyProbeResult self_dependency();
  [[nodiscard]] PushProbeResult push();
  [[nodiscard]] HpackProbeResult hpack_ratio();

 private:
  /// Establishes the shared connection and performs the baseline fetches:
  /// Options::hpack_h sequential GETs of "/" (one when !expect_hpack) —
  /// the byte-identical prefix of the fresh settings / push / hpack probe
  /// conversations, observed once instead of three times.
  void ensure_baseline();

  const Target& target_;
  Options options_;
  SessionScratch own_;        // backing storage when no scratch was passed
  SessionScratch* scratch_;   // where client/server actually live
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::uint32_t> baseline_streams_;
  bool baseline_done_ = false;
  /// The baseline ran to quiescence with the connection healthy; the
  /// settings/push/hpack readouts (pure functions of the baseline traffic)
  /// are trustworthy.
  bool baseline_clean_ = false;
  /// The connection is still fit for *further* phases (priority, self-dep).
  /// Cleared by any fallback or death so one bad phase can't contaminate
  /// the next — subsequent probes revert to fresh connections.
  bool shared_ok_ = false;
};

}  // namespace h2r::core
