// Deprecated shim over net::LockstepTransport.
//
// The byte shuttle between a ClientConnection and an Http2Server is now a
// first-class, injectable policy — see net/transport.h (LockstepTransport
// for the historical perfect pump, FaultyTransport for adversarial
// delivery). This free function survives one PR for out-of-tree callers;
// it runs a LockstepTransport wired to the client's recorder, preserving
// the old behaviour bit-for-bit.
#pragma once

#include "core/client.h"
#include "server/engine.h"

namespace h2r::core {

/// Pumps bytes both ways until quiescent. Returns the number of rounds run.
[[deprecated(
    "use net::LockstepTransport / Target::make_transport "
    "(net/transport.h)")]]
int run_exchange(ClientConnection& client, server::Http2Server& server,
                 int max_rounds = 4096);

}  // namespace h2r::core
