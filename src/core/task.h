// Minimal C++20 coroutine task for resumable probe sequences.
//
// A probe body written as a Task<R> coroutine suspends exactly where its
// transport parks (a stalled net::FaultyTransport stretch, surfaced through
// net::ExchangeDriver) or where retry backoff sleeps — so an event loop can
// multiplex thousands of in-flight probe sequences on one thread, advancing
// a virtual clock past the parked stretches instead of spinning them.
//
// Two drivers share every coroutine:
//  - run_sync() services each park the moment it appears, which reproduces
//    the blocking Transport::run behaviour round for round (same trace
//    events, same ledger accounting) — the sync probe_* functions are
//    run_sync over their *_task twins.
//  - corpus::Reactor keeps many root tasks in flight, sleeping parked ones
//    on a timer wheel (see src/corpus/reactor.h).
// One probe implementation, two drivers: the equivalence is by
// construction, not by keeping two code paths in sync.
#pragma once

#include <coroutine>
#include <exception>
#include <type_traits>
#include <utility>

#include "net/transport.h"

namespace h2r::core {

/// Scheduler-visible state of one suspended root task: filled in by the
/// leaf awaitable (an exchange park or a backoff sleep) for whoever drives
/// the root. One TaskContext per root task, propagated down the co_await
/// chain so nested probe tasks park the whole tree.
struct TaskContext {
  /// The parked exchange the tree waits on; null for a pure timer sleep.
  /// The driver services it (unpark + pump, repeatedly if the exchange
  /// parks again) and resumes resume_point only once the exchange is done.
  net::ExchangeDriver* waiting = nullptr;
  /// Virtual rounds a pure timer sleep lasts (retry backoff). Meaningful
  /// only while waiting == nullptr; a parked exchange's stretch lives in
  /// waiting->park_rounds().
  int park_rounds = 0;
  /// The coroutine to resume once the wait is satisfied.
  std::coroutine_handle<> resume_point;
};

namespace detail {

struct PromiseBase {
  TaskContext* ctx = nullptr;
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> self) noexcept {
      // Symmetric transfer into the awaiting coroutine; a finished root has
      // no continuation and its driver observes done() instead.
      auto next = self.promise().continuation;
      return next ? next : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  // Probe bodies don't throw; a stray exception here would otherwise
  // vanish into a dangling resume.
  [[noreturn]] void unhandled_exception() noexcept { std::terminate(); }
};

template <typename Task, typename Promise, typename T>
struct TaskAwaiter {
  std::coroutine_handle<Promise> handle;

  bool await_ready() const noexcept { return false; }
  template <typename OuterPromise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<OuterPromise> awaiting) noexcept {
    // Child inherits the root's context and remembers who to resume, then
    // starts immediately (lazy start + symmetric transfer).
    handle.promise().ctx = awaiting.promise().ctx;
    handle.promise().continuation = awaiting;
    return handle;
  }
  T await_resume() {
    if constexpr (!std::is_void_v<T>) {
      return std::move(handle.promise().value);
    }
  }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only owner of the frame;
/// start it as a root via start(), or co_await it from another Task.
template <typename T>
class [[nodiscard]] Task {
 public:
  using value_type = T;

  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  auto operator co_await() noexcept {
    return detail::TaskAwaiter<Task, promise_type, T>{h_};
  }

  /// Root-task API: runs the body up to its first suspension (or to the
  /// end) under @p ctx. The driver then services ctx until done().
  void start(TaskContext& ctx) {
    h_.promise().ctx = &ctx;
    h_.resume();
  }
  [[nodiscard]] bool done() const noexcept { return h_.done(); }
  /// The co_returned value; valid once done().
  [[nodiscard]] T& value() noexcept { return h_.promise().value; }

 private:
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  using value_type = void;

  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  auto operator co_await() noexcept {
    return detail::TaskAwaiter<Task, promise_type, void>{h_};
  }

  void start(TaskContext& ctx) {
    h_.promise().ctx = &ctx;
    h_.resume();
  }
  [[nodiscard]] bool done() const noexcept { return h_.done(); }

 private:
  std::coroutine_handle<promise_type> h_;
};

/// co_awaitable Transport::run: pumps the exchange inline and suspends the
/// task only while the transport parks (never with LockstepTransport, which
/// is always ready — the clean path takes zero suspensions). The awaitable
/// lives in the awaiting coroutine's frame, so the endpoint adapters and
/// the driver survive across suspensions.
template <typename C, typename S>
class [[nodiscard]] AwaitExchange {
 public:
  AwaitExchange(net::Transport& transport, C& client, S& server,
                const net::ExchangeLimits& limits = {})
      : client_(client),
        server_(server),
        driver_(transport, client_, server_, limits) {}
  AwaitExchange(const AwaitExchange&) = delete;
  AwaitExchange& operator=(const AwaitExchange&) = delete;

  bool await_ready() {
    return driver_.pump() == net::ExchangeDriver::State::kDone;
  }
  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> awaiting) {
    TaskContext* ctx = awaiting.promise().ctx;
    if (ctx == nullptr) {
      // No scheduler above: service the parks inline, exactly like the
      // blocking Transport::run, and carry on without suspending.
      do {
        driver_.unpark();
      } while (driver_.pump() == net::ExchangeDriver::State::kParked);
      return false;
    }
    ctx->waiting = &driver_;
    ctx->park_rounds = driver_.park_rounds();
    ctx->resume_point = awaiting;
    return true;
  }
  const net::ExchangeResult& await_resume() const noexcept {
    return driver_.result();
  }

 private:
  net::EndpointRef<C> client_;
  net::EndpointRef<S> server_;
  net::ExchangeDriver driver_;
};

/// Pure virtual-clock sleep: retry backoff parks the task for @p rounds
/// ticks on the reactor's timer wheel. Under run_sync the sleep is free —
/// simulated time costs a sequential driver nothing, matching the
/// historical behaviour where backoff was only ever *booked*, never slept.
struct ParkFor {
  int rounds = 0;

  bool await_ready() const noexcept { return rounds <= 0; }
  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> awaiting) const {
    TaskContext* ctx = awaiting.promise().ctx;
    if (ctx == nullptr) return false;
    ctx->waiting = nullptr;
    ctx->park_rounds = rounds;
    ctx->resume_point = awaiting;
    return true;
  }
  void await_resume() const noexcept {}
};

/// Drives one root task to completion, servicing every park the moment it
/// appears. This is the sequential driver: identical rounds, trace events,
/// and ledger accounting to the blocking Transport::run path.
template <typename T>
T run_sync(Task<T> task) {
  TaskContext ctx;
  task.start(ctx);
  while (!task.done()) {
    if (net::ExchangeDriver* d = ctx.waiting) {
      d->unpark();
      if (d->pump() == net::ExchangeDriver::State::kParked) continue;
      ctx.waiting = nullptr;
    }
    ctx.resume_point.resume();
  }
  if constexpr (!std::is_void_v<T>) return std::move(task.value());
}

}  // namespace h2r::core
