#include "core/client.h"

#include <algorithm>

namespace h2r::core {
namespace {

using h2::Frame;
using h2::FrameType;

}  // namespace

std::string_view to_string(ClientTerminal t) noexcept {
  switch (t) {
    case ClientTerminal::kQuiescent:
      return "quiescent";
    case ClientTerminal::kTransportError:
      return "transport-error";
    case ClientTerminal::kProtocolError:
      return "protocol-error";
  }
  return "unknown";
}

ClientOptions& ClientOptions::with_initial_window(std::uint32_t window) {
  for (auto& [id, value] : settings) {
    if (id == h2::SettingId::kInitialWindowSize) {
      value = window;
      return *this;
    }
  }
  settings.emplace_back(h2::SettingId::kInitialWindowSize, window);
  return *this;
}

ClientOptions ClientOptions::slow_read_stance(std::uint32_t window) {
  ClientOptions opts;
  opts.with_initial_window(window);
  opts.auto_stream_window_update = false;
  return opts;
}

ClientConnection::ClientConnection(ClientOptions options)
    : options_(std::move(options)),
      parser_(h2::kMaxAllowedFrameSize),  // accept whatever the server sends
      encoder_({.policy = hpack::IndexingPolicy::kAggressive,
                .use_huffman = true}),
      decoder_() {
  if (options_.recorder != nullptr) {
    options_.recorder->begin_connection(options_.authority);
  }
  events_.reserve(16);
  out_.write_string(h2::kClientPreface);
  send_frame(h2::make_settings(options_.settings));
}

void ClientConnection::reset(ClientOptions options) {
  options_ = std::move(options);
  reset();
}

void ClientConnection::reset() {
  parser_ = h2::FrameParser(h2::kMaxAllowedFrameSize);
  encoder_ = hpack::Encoder({.policy = hpack::IndexingPolicy::kAggressive,
                             .use_huffman = true});
  decoder_ = hpack::Decoder();
  server_settings_ = h2::SettingsMap();
  server_settings_received_ = false;
  server_settings_entry_count_ = 0;
  next_stream_id_ = 1;
  sent_any_request_ = false;
  response_seen_ = false;
  preemptive_window_bonus_ = 0;
  events_.clear();
  data_bytes_.clear();
  complete_.clear();
  rst_.clear();
  pushed_.clear();
  goaway_.reset();
  continuation_stream_.reset();
  continuation_buffer_.clear();
  continuation_end_stream_ = false;
  uploads_.clear();
  upload_conn_window_ = h2::FlowWindow(h2::kDefaultInitialWindowSize);
  upload_initial_window_ = h2::kDefaultInitialWindowSize;
  out_ = ByteWriter(buffer_pool_.acquire());
  dead_ = false;
  terminal_ = TerminalInfo{};
  if (options_.recorder != nullptr) {
    options_.recorder->begin_connection(options_.authority);
  }
  out_.write_string(h2::kClientPreface);
  send_frame(h2::make_settings(options_.settings));
}

Bytes ClientConnection::take_output() {
  Bytes drained = out_.take();
  out_ = ByteWriter(buffer_pool_.acquire());
  return drained;
}

void ClientConnection::send_frame(const Frame& frame) {
  const std::size_t wire = h2::serialize_frame_into(out_, frame);
  if (options_.recorder != nullptr) {
    options_.recorder->record_frame(trace::Direction::kClientToServer, frame,
                                    wire);
  }
}

Bytes ClientConnection::encode_block(const hpack::HeaderList& headers) {
  const std::uint64_t ins = encoder_.table().insert_count();
  const std::uint64_t ev = encoder_.table().eviction_count();
  Bytes block = encoder_.encode(headers);
  note_hpack_delta(trace::Direction::kClientToServer,
                   encoder_.table().insert_count() - ins,
                   encoder_.table().eviction_count() - ev);
  return block;
}

void ClientConnection::note_hpack_delta(trace::Direction dir,
                                        std::uint64_t inserts,
                                        std::uint64_t evictions) {
  if (options_.recorder == nullptr) return;
  if (inserts != 0) {
    options_.recorder->record(
        {.dir = dir,
         .kind = trace::EventKind::kHpackInsert,
         .detail_a = static_cast<std::uint32_t>(inserts)});
  }
  if (evictions != 0) {
    options_.recorder->record(
        {.dir = dir,
         .kind = trace::EventKind::kHpackEvict,
         .detail_a = static_cast<std::uint32_t>(evictions)});
  }
}

std::uint32_t ClientConnection::send_request(
    const std::string& path, std::optional<h2::PriorityInfo> priority,
    bool end_stream) {
  const std::uint32_t id = next_stream_id_;
  next_stream_id_ += 2;
  sent_any_request_ = true;
  hpack::HeaderList headers = {{":method", "GET"},
                               {":scheme", "https"},
                               {":authority", options_.authority},
                               {":path", path}};
  send_frame(h2::make_headers(id, encode_block(headers), end_stream,
                              /*end_headers=*/true, priority));
  return id;
}

std::uint32_t ClientConnection::send_request_with_body(
    const std::string& path, Bytes body, const std::string& content_type) {
  const std::uint32_t id = next_stream_id_;
  next_stream_id_ += 2;
  sent_any_request_ = true;
  hpack::HeaderList headers = {{":method", "POST"},
                               {":scheme", "https"},
                               {":authority", options_.authority},
                               {":path", path},
                               {"content-type", content_type},
                               {"content-length", std::to_string(body.size())}};
  send_frame(h2::make_headers(id, encode_block(headers),
                              /*end_stream=*/false));
  Upload upload{.body = std::move(body), .offset = 0,
                .window = h2::FlowWindow(upload_initial_window_)};
  uploads_.emplace(id, std::move(upload));
  flush_uploads();
  return id;
}

std::size_t ClientConnection::pending_upload_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, u] : uploads_) total += u.body.size() - u.offset;
  return total;
}

void ClientConnection::flush_uploads() {
  for (auto it = uploads_.begin(); it != uploads_.end();) {
    Upload& u = it->second;
    bool done = false;
    while (u.offset < u.body.size()) {
      const auto budget = std::min<std::int64_t>(
          {static_cast<std::int64_t>(u.body.size() - u.offset),
           u.window.available(), upload_conn_window_.available(),
           static_cast<std::int64_t>(h2::kDefaultMaxFrameSize)});
      if (budget <= 0) break;
      Bytes chunk(u.body.begin() + static_cast<std::ptrdiff_t>(u.offset),
                  u.body.begin() +
                      static_cast<std::ptrdiff_t>(u.offset + budget));
      u.offset += static_cast<std::size_t>(budget);
      (void)u.window.consume(budget);
      (void)upload_conn_window_.consume(budget);
      done = u.offset == u.body.size();
      send_frame(h2::make_data(it->first, std::move(chunk), done));
    }
    // Zero-length bodies still need their END_STREAM.
    if (u.body.empty()) {
      send_frame(h2::make_data(it->first, {}, true));
      done = true;
    }
    it = done ? uploads_.erase(it) : std::next(it);
  }
}

void ClientConnection::send_ping(std::array<std::uint8_t, 8> opaque) {
  send_frame(h2::make_ping(opaque, /*ack=*/false));
}

void ClientConnection::send_window_update(std::uint32_t stream_id,
                                          std::uint32_t increment) {
  send_frame(h2::make_window_update(stream_id, increment));
}

void ClientConnection::send_priority(std::uint32_t stream_id,
                                     const h2::PriorityInfo& info) {
  send_frame(h2::make_priority(stream_id, info));
}

void ClientConnection::send_rst_stream(std::uint32_t stream_id,
                                       h2::ErrorCode code) {
  send_frame(h2::make_rst_stream(stream_id, code));
}

void ClientConnection::send_settings(
    std::vector<std::pair<h2::SettingId, std::uint32_t>> entries) {
  send_frame(h2::make_settings(std::move(entries)));
}

void ClientConnection::receive(std::span<const std::uint8_t> bytes) {
  if (dead_) return;
  parser_.feed(bytes);
  while (auto next = parser_.next_view()) {
    if (!next->ok()) {
      // Surface the evidence, not just "parse error": the parser knows
      // which frame (stream offset + type octet) poisoned the stream.
      terminal_.state = ClientTerminal::kProtocolError;
      terminal_.status = next->status();
      if (const auto& ctx = parser_.error_context(); ctx.has_value()) {
        terminal_.byte_offset = ctx->frame_offset;
        terminal_.frame_type = ctx->frame_type;
        terminal_.frame_type_known = ctx->type_known;
      }
      if (options_.recorder != nullptr) {
        options_.recorder->record(
            {.dir = trace::Direction::kServerToClient,
             .kind = trace::EventKind::kParseError,
             .frame_type = terminal_.frame_type,
             .detail_a = static_cast<std::uint32_t>(terminal_.byte_offset),
             .detail_b = terminal_.frame_type_known ? 1u : 0u,
             .note = next->status().message()});
      }
      dead_ = true;
      return;
    }
    on_frame(next->value());
  }
}

void ClientConnection::close(h2::ErrorCode code) {
  if (dead_) return;
  // Last peer-initiated stream we processed: the highest PUSH_PROMISE id
  // seen, or 0 when the server never pushed (RFC 7540 §6.8).
  const std::uint32_t last_push =
      pushed_.empty() ? 0u : pushed_.rbegin()->first;
  send_frame(h2::make_goaway(last_push, code, ""));
  dead_ = true;
}

void ClientConnection::on_transport_close(const Status& status) {
  // A protocol-level cause already recorded on this connection (parse
  // error, GOAWAY) outranks the transport dying afterwards.
  if (!dead_ && terminal_.state == ClientTerminal::kQuiescent &&
      !goaway_.has_value()) {
    terminal_.state = ClientTerminal::kTransportError;
    terminal_.status = status;
    terminal_.byte_offset = parser_.fed_total();
  }
  dead_ = true;
}

void ClientConnection::on_frame(const h2::FrameView& view) {
  ReceivedFrame ev;
  ev.sequence = events_.size();
  // Payload octets for the frame kinds whose sizes probes reason about.
  if (view.type() == FrameType::kData || view.type() == FrameType::kHeaders ||
      view.type() == FrameType::kPushPromise) {
    ev.header_block_size = view.body.size();
  }

  switch (view.type()) {
    case FrameType::kData: {
      response_seen_ = true;
      data_bytes_[view.stream_id] += view.body.size();
      if (view.has_flag(h2::flags::kEndStream)) {
        complete_[view.stream_id] = true;
      }
      if (!view.body.empty()) {
        const auto n = static_cast<std::uint32_t>(view.body.size());
        if (options_.auto_connection_window_update) send_window_update(0, n);
        if (options_.auto_stream_window_update && !complete_[view.stream_id]) {
          send_window_update(view.stream_id, n);
        }
      }
      break;
    }
    case FrameType::kHeaders: {
      response_seen_ = true;
      if (!view.has_flag(h2::flags::kEndHeaders)) {
        // Header block continues in CONTINUATION frames (§4.3).
        continuation_stream_ = view.stream_id;
        continuation_buffer_.assign(view.body.begin(), view.body.end());
        continuation_end_stream_ = view.has_flag(h2::flags::kEndStream);
        break;
      }
      auto decoded = decoder_.decode(view.body);
      if (decoded.ok()) ev.headers = std::move(decoded).value();
      if (view.has_flag(h2::flags::kEndStream)) {
        complete_[view.stream_id] = true;
      }
      break;
    }
    case FrameType::kContinuation: {
      if (!continuation_stream_ || *continuation_stream_ != view.stream_id) {
        break;  // stray CONTINUATION; record the event, decode nothing
      }
      continuation_buffer_.insert(continuation_buffer_.end(),
                                  view.body.begin(), view.body.end());
      if (!view.has_flag(h2::flags::kEndHeaders)) break;
      auto decoded = decoder_.decode(continuation_buffer_);
      if (decoded.ok()) ev.headers = std::move(decoded).value();
      ev.header_block_size = continuation_buffer_.size();
      if (continuation_end_stream_) complete_[view.stream_id] = true;
      continuation_stream_.reset();
      continuation_buffer_.clear();
      break;
    }
    case FrameType::kPushPromise: {
      auto decoded = decoder_.decode(view.body);
      if (decoded.ok()) {
        ev.headers = decoded.value();
        pushed_[view.promised_stream_id] = std::move(decoded).value();
      }
      break;
    }
    case FrameType::kSettings: {
      if (!view.has_flag(h2::flags::kAck)) {
        if (!server_settings_received_) {
          server_settings_received_ = true;
          server_settings_entry_count_ = view.settings_entry_count();
        }
        (void)server_settings_.apply_frame(view);
        if (options_.recorder != nullptr) {
          for (std::size_t i = 0; i < view.settings_entry_count(); ++i) {
            const auto [id, value] = view.setting_at(i);
            options_.recorder->record(
                {.dir = trace::Direction::kServerToClient,
                 .kind = trace::EventKind::kSettingsApplied,
                 .detail_a = id,
                 .detail_b = value});
          }
        }
        send_frame(h2::make_settings_ack());
        // Honor the server's header table preference for *our* encoder.
        encoder_.set_table_capacity(
            std::min(server_settings_.header_table_size(),
                     h2::kDefaultHeaderTableSize));
        // §6.9.2: retroactively adjust upload windows to the server's
        // announced SETTINGS_INITIAL_WINDOW_SIZE.
        const std::uint32_t new_iws = server_settings_.initial_window_size();
        if (new_iws != upload_initial_window_) {
          for (auto& [id, u] : uploads_) {
            (void)u.window.adjust_initial(upload_initial_window_, new_iws);
          }
          upload_initial_window_ = new_iws;
          flush_uploads();
        }
      }
      break;
    }
    case FrameType::kPing: {
      if (!view.has_flag(h2::flags::kAck)) {
        std::array<std::uint8_t, 8> opaque{};
        std::copy_n(view.body.begin(), 8, opaque.begin());
        send_frame(h2::make_ping(opaque, true));
      }
      break;
    }
    case FrameType::kRstStream:
      rst_[view.stream_id] = view.error;
      break;
    case FrameType::kGoaway:
      goaway_ = h2::GoawayPayload{
          .last_stream_id = view.last_stream_id,
          .error = view.error,
          .debug_data = Bytes(view.body.begin(), view.body.end())};
      break;
    case FrameType::kWindowUpdate: {
      const std::uint32_t increment = view.increment;
      // "Preemptive": a connection-scope window raise before the server has
      // produced any response frame — the Nginx §V-C idiom.
      if (view.stream_id == 0 && !response_seen_) {
        preemptive_window_bonus_ += increment;
      }
      if (view.stream_id == 0) {
        (void)upload_conn_window_.expand(increment);
      } else if (auto it = uploads_.find(view.stream_id); it != uploads_.end()) {
        (void)it->second.window.expand(increment);
      }
      flush_uploads();
      break;
    }
    default:
      break;
  }
  events_.push_back(std::move(ev));
  if (view.type() == FrameType::kData && !options_.retain_data_payloads) {
    // Size-only observation: the event keeps the frame's identity (type,
    // flags, stream) and header_block_size; the body octets stay behind in
    // the parser buffer.
    Frame stripped;
    stripped.flags = view.flags;
    stripped.stream_id = view.stream_id;
    stripped.payload = h2::DataPayload{};
    events_.back().frame = std::move(stripped);
  } else {
    events_.back().frame = h2::materialize(view);
  }
}

std::vector<const ReceivedFrame*> ClientConnection::frames_of(
    h2::FrameType type, std::optional<std::uint32_t> stream_id) const {
  std::vector<const ReceivedFrame*> out;
  for (const auto& ev : events_) {
    if (ev.frame.type() != type) continue;
    if (stream_id && ev.frame.stream_id != *stream_id) continue;
    out.push_back(&ev);
  }
  return out;
}

std::optional<h2::ErrorCode> ClientConnection::rst_on(
    std::uint32_t stream_id) const {
  auto it = rst_.find(stream_id);
  if (it == rst_.end()) return std::nullopt;
  return it->second;
}

std::size_t ClientConnection::data_received(std::uint32_t stream_id) const {
  auto it = data_bytes_.find(stream_id);
  return it == data_bytes_.end() ? 0 : it->second;
}

bool ClientConnection::stream_complete(std::uint32_t stream_id) const {
  auto it = complete_.find(stream_id);
  return it != complete_.end() && it->second;
}

std::optional<hpack::HeaderList> ClientConnection::response_headers(
    std::uint32_t stream_id) const {
  for (const auto& ev : events_) {
    const auto type = ev.frame.type();
    if ((type == h2::FrameType::kHeaders ||
         type == h2::FrameType::kContinuation) &&
        ev.frame.stream_id == stream_id && ev.headers) {
      return ev.headers;
    }
  }
  return std::nullopt;
}

}  // namespace h2r::core
