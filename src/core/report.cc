#include "core/report.h"

#include <algorithm>

#include "trace/annotate.h"

namespace h2r::core {
namespace {

std::string yes_no(bool b) { return b ? "yes" : "no"; }
std::string support(bool b) { return b ? "support" : "no support"; }

}  // namespace

const std::vector<std::string>& Characterization::row_labels() {
  static const std::vector<std::string> kLabels = {
      "ALPN",
      "NPN",
      "Request Multiplexing",
      "Flow Control on DATA Frames",
      "Flow Control on HEADERS Frames",
      "Zero Window Update on stream",
      "Zero Window Update on connection",
      "Large Window Update (Connection)",
      "Large Window Update (Stream)",
      "Server Push",
      "Priority Mechanism Testing (Algorithm 1)",
      "Self-dependent Stream",
      "Header Compression",
      "HTTP/2 PING",
  };
  return kLabels;
}

std::vector<std::string> Characterization::row_values() const {
  // "Header Compression" is "support*" (partial) when the dynamic table is
  // provably unused for responses: the compression ratio stays at 1.
  std::string compression = "no support";
  if (hpack.ran) compression = hpack.ratio >= 0.97 ? "support*" : "support";

  return {
      support(negotiation.alpn_h2),
      support(negotiation.npn_h2),
      support(multiplexing.supported),
      yes_no(data_frame_control.outcome == SmallWindowOutcome::kRespectsWindow),
      // Flow control misapplied to HEADERS <=> HEADERS withheld at window 0.
      yes_no(!zero_window_headers.headers_received),
      std::string(to_string(window_update.zero_on_stream)),
      std::string(to_string(window_update.zero_on_connection)),
      std::string(to_string(window_update.large_on_connection)),
      std::string(to_string(window_update.large_on_stream)),
      yes_no(push.push_received),
      priority.passes() ? "pass" : "fail",
      std::string(to_string(self_dependency.reaction)),
      compression,
      support(ping.supported),
  };
}

Characterization characterize(const Target& target, Rng& rng) {
  Characterization c;
  c.server_key = target.profile.key;
  c.negotiation = probe_negotiation(target);
  c.settings = probe_settings(target);
  c.multiplexing = probe_multiplexing(target);
  c.concurrency_limit = probe_concurrency_limit(target);
  c.data_frame_control = probe_data_frame_control(target);
  c.zero_window_headers = probe_zero_window_headers(target);
  c.window_update = probe_window_update_reactions(target);
  c.priority = probe_priority_mechanism(target);
  c.self_dependency = probe_self_dependency(target);
  c.push = probe_server_push(target);
  c.hpack = probe_hpack_ratio(target);
  c.ping = probe_ping(target, /*samples=*/8, rng);
  return c;
}

Characterization characterize_traced(Target target, Rng& rng,
                                     trace::VectorRecorder& recorder) {
  target.recorder = &recorder;
  Characterization c = characterize(target, rng);
  c.violation_tags = trace::annotate_violations(recorder.events());
  trace::consume(c.wire_metrics, recorder.events());
  return c;
}

std::map<std::string, std::string> derive_table3_quirks(
    const std::vector<std::string>& tags) {
  namespace vt = trace::tags;
  const auto has = [&tags](const char* tag) {
    return std::find(tags.begin(), tags.end(), tag) != tags.end();
  };
  // Reaction rows: the tag suffix names the non-compliant reaction; no tag
  // means the server reacted as RFC 7540 prescribes.
  const auto reaction_row = [&has](const char* ignored, const char* goaway,
                                   const char* goaway_debug,
                                   const char* compliant) -> std::string {
    if (has(ignored)) return "ignore";
    if (goaway != nullptr && has(goaway)) return "GOAWAY";
    if (has(goaway_debug)) return "GOAWAY+debug";
    return compliant;
  };

  std::map<std::string, std::string> rows;
  rows["Flow Control on DATA Frames"] =
      has(vt::kZeroLengthDataUnderTinyWindow) ||
              has(vt::kStalledUnderTinyWindow) ||
              has(vt::kDataExceedsStreamWindow) ||
              has(vt::kDataExceedsConnWindow)
          ? "no"
          : "yes";
  rows["Flow Control on HEADERS Frames"] =
      yes_no(has(vt::kFlowControlOnHeaders));
  rows["Zero Window Update on stream"] =
      reaction_row(vt::kZeroWuStreamIgnored, vt::kZeroWuStreamGoaway,
                   vt::kZeroWuStreamGoawayDebug, "RST_STREAM");
  rows["Zero Window Update on connection"] = reaction_row(
      vt::kZeroWuConnIgnored, nullptr, vt::kZeroWuConnGoawayDebug, "GOAWAY");
  rows["Large Window Update (Connection)"] = reaction_row(
      vt::kLargeWuConnIgnored, nullptr, vt::kLargeWuConnGoawayDebug, "GOAWAY");
  rows["Large Window Update (Stream)"] =
      reaction_row(vt::kLargeWuStreamIgnored, vt::kLargeWuStreamGoaway,
                   vt::kLargeWuStreamGoawayDebug, "RST_STREAM");
  rows["Priority Mechanism Testing (Algorithm 1)"] =
      has(vt::kPriorityInversion) ? "fail" : "pass";
  rows["Self-dependent Stream"] =
      reaction_row(vt::kSelfDependencyIgnored, vt::kSelfDependencyGoaway,
                   vt::kSelfDependencyGoawayDebug, "RST_STREAM");
  rows["Header Compression"] =
      has(vt::kHpackNoDynamicIndexing) ? "support*" : "support";
  return rows;
}

std::vector<std::string> rfc7540_reference_column() {
  return {
      "support",           // ALPN: MUST for h2-over-TLS
      "does not require",  // NPN
      "support",           // multiplexing
      "yes",               // flow control on DATA
      "no",                // flow control must NOT cover HEADERS
      "RST_STREAM",        // zero window update on stream
      "GOAWAY",            // zero window update on connection
      "GOAWAY",            // large window update (connection)
      "RST_STREAM",        // large window update (stream)
      "yes",               // server push
      "pass",              // priority mechanism
      "RST_STREAM",        // self-dependent stream
      "support",           // header compression
      "support",           // PING
  };
}

}  // namespace h2r::core
