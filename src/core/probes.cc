#include "core/probes.h"

#include <algorithm>
#include <map>

#include "net/upgrade.h"

namespace h2r::core {
namespace {

using h2::ErrorCode;
using h2::FrameType;
using h2::SettingId;

constexpr std::uint32_t kHugeWindow = 0x7FFF'FFFFu;
constexpr std::uint32_t kHalfWindow = 0x4000'0000u;

ClientOptions with_initial_window(std::uint32_t iws) {
  ClientOptions o;
  o.settings = {{SettingId::kInitialWindowSize, iws}};
  return o;
}

}  // namespace

UpdateReaction classify_update_reaction(const ClientConnection& client,
                                        std::optional<std::uint32_t> stream_id,
                                        std::string* debug_out) {
  if (client.goaway_received()) {
    const auto& g = *client.goaway();
    if (debug_out != nullptr) {
      debug_out->assign(g.debug_data.begin(), g.debug_data.end());
    }
    return g.debug_data.empty() ? UpdateReaction::kGoaway
                                : UpdateReaction::kGoawayWithDebug;
  }
  if (stream_id && client.rst_on(*stream_id)) return UpdateReaction::kRstStream;
  return UpdateReaction::kIgnored;
}

std::string_view to_string(SmallWindowOutcome o) noexcept {
  switch (o) {
    case SmallWindowOutcome::kRespectsWindow:
      return "respects-window";
    case SmallWindowOutcome::kZeroLengthData:
      return "zero-length-data";
    case SmallWindowOutcome::kNoResponse:
      return "no-response";
    case SmallWindowOutcome::kOversized:
      return "oversized";
  }
  return "?";
}

std::string_view to_string(UpdateReaction r) noexcept {
  switch (r) {
    case UpdateReaction::kIgnored:
      return "ignore";
    case UpdateReaction::kRstStream:
      return "RST_STREAM";
    case UpdateReaction::kGoaway:
      return "GOAWAY";
    case UpdateReaction::kGoawayWithDebug:
      return "GOAWAY+debug";
  }
  return "?";
}

Target::Target(const Target& other)
    : host(other.host),
      profile(other.profile),
      site(other.site),
      path(other.path),
      offers_h2(other.offers_h2),
      recorder(other.recorder),
      limits(other.limits),
      faults(other.faults),
      ledger(other.ledger),
      transport_seq_(other.transport_seq_) {}

Target& Target::operator=(const Target& other) {
  if (this == &other) return *this;
  host = other.host;
  profile = other.profile;
  site = other.site;
  path = other.path;
  offers_h2 = other.offers_h2;
  recorder = other.recorder;
  limits = other.limits;
  faults = other.faults;
  ledger = other.ledger;
  transport_seq_ = other.transport_seq_;
  cached_profile_.reset();
  cached_site_.reset();
  return *this;
}

const std::shared_ptr<const server::ServerProfile>& Target::shared_profile()
    const {
  if (!cached_profile_) {
    cached_profile_ = std::make_shared<const server::ServerProfile>(profile);
  }
  return cached_profile_;
}

const std::shared_ptr<const server::Site>& Target::shared_site() const {
  if (!cached_site_) {
    cached_site_ = std::make_shared<const server::Site>(site);
  }
  return cached_site_;
}

Target Target::testbed(server::ServerProfile profile) {
  Target t;
  t.host = profile.key + ".testbed.local";
  t.site = server::Site::standard_testbed_site(t.host);
  t.profile = std::move(profile);
  t.path.label = t.host;
  return t;
}

std::unique_ptr<net::Transport> Target::make_transport() const {
  if (!faults.enabled) {
    return std::make_unique<net::LockstepTransport>(recorder, ledger);
  }
  // Each connection gets its own plan: same target state + same faults.seed
  // => the same sequence of plans, independent of which worker runs it.
  std::uint64_t sm = faults.seed + 0x9E3779B97F4A7C15ull * ++transport_seq_;
  return std::make_unique<net::FaultyTransport>(
      net::FaultPlan::generate(splitmix64(sm), faults.probability), recorder,
      ledger);
}

// ------------------------------------------------------------- negotiation

NegotiationProbeResult probe_negotiation(const Target& target) {
  NegotiationProbeResult out;
  const std::vector<std::string> client_protocols = {net::kProtoH2,
                                                     net::kProtoHttp11};
  const auto alpn = net::negotiate_alpn(client_protocols, target.profile.tls);
  const auto npn = net::negotiate_npn(client_protocols, target.profile.tls);
  out.alpn_h2 = alpn.selected_h2();
  out.npn_h2 = npn.selected_h2();
  out.h2_established = out.alpn_h2 || out.npn_h2;
  return out;
}

H2cProbeResult probe_h2c_upgrade(const Target& target) {
  net::UpgradeRequest request;
  request.host = target.host;
  request.settings = {{SettingId::kInitialWindowSize,
                       h2::kDefaultInitialWindowSize}};
  const auto result = net::process_upgrade_request(
      net::render_upgrade_request(request), target.profile.supports_h2c);
  return {.switched = result.switched, .status_line = result.status_line};
}

// ----------------------------------------------------------------- settings

SettingsProbeResult probe_settings(const Target& target) {
  return run_sync(probe_settings_task(target));
}

Task<SettingsProbeResult> probe_settings_task(const Target& target) {
  SettingsProbeResult out;
  // Clients are constructed first throughout the suite so the wiretap's
  // connection-start marker precedes the server's preface frames.
  ClientConnection client(target.client_options());
  auto server = target.make_server();
  auto transport = target.make_transport();
  const std::uint32_t sid = client.send_request("/");
  co_await AwaitExchange(*transport, client, server, target.limits);

  out.settings_entry_count = client.server_settings_entry_count();
  const auto& s = client.server_settings();
  out.header_table_size = s.raw(SettingId::kHeaderTableSize);
  out.max_concurrent_streams = s.raw(SettingId::kMaxConcurrentStreams);
  out.initial_window_size = s.raw(SettingId::kInitialWindowSize);
  out.max_frame_size = s.raw(SettingId::kMaxFrameSize);
  out.max_header_list_size = s.raw(SettingId::kMaxHeaderListSize);
  out.preemptive_window_bonus = client.preemptive_window_bonus();
  if (auto headers = client.response_headers(sid)) {
    out.headers_received = true;
    out.server_header = std::string(hpack::find_header(*headers, "server"));
  }
  co_return out;
}

// ------------------------------------------------------------- multiplexing

MultiplexingProbeResult probe_multiplexing(const Target& target,
                                           int num_streams) {
  MultiplexingProbeResult out;
  ClientConnection client(target.client_options(with_initial_window(kHugeWindow)));
  auto server = target.make_server();
  auto transport = target.make_transport();
  std::vector<std::uint32_t> streams;
  streams.reserve(static_cast<std::size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i) {
    streams.push_back(client.send_request("/large/" + std::to_string(i)));
  }
  transport->run(client, server, target.limits);

  std::uint32_t prev = 0;
  for (const auto& ev : client.events()) {
    if (ev.frame.type() != FrameType::kData) continue;
    if (prev != 0 && ev.frame.stream_id != prev) ++out.interleave_switches;
    prev = ev.frame.stream_id;
  }
  for (std::uint32_t sid : streams) {
    if (client.stream_complete(sid)) ++out.streams_completed;
  }
  // FCFS transmission yields exactly num_streams-1 switches; anything well
  // beyond that means responses progressed concurrently.
  out.supported = out.streams_completed == num_streams &&
                  out.interleave_switches >= num_streams * 2;
  return out;
}

ConcurrencyLimitProbeResult probe_concurrency_limit(const Target& target) {
  ConcurrencyLimitProbeResult out;
  {
    Target capped = target;
    capped.profile.max_concurrent_streams = 0;
    ClientConnection client(capped.client_options());
    auto server = capped.make_server();
    auto transport = capped.make_transport();
    const std::uint32_t sid = client.send_request("/small");
    transport->run(client, server, capped.limits);
    out.refused_when_zero =
        client.rst_on(sid) == std::optional<ErrorCode>(ErrorCode::kRefusedStream);
  }
  {
    Target capped = target;
    capped.profile.max_concurrent_streams = 1;
    ClientConnection client(capped.client_options());
    auto server = capped.make_server();
    auto transport = capped.make_transport();
    // Two requests for objects large enough that the first is still active
    // when the second arrives.
    const std::uint32_t first = client.send_request("/large/0");
    const std::uint32_t second = client.send_request("/large/1");
    transport->run(client, server, capped.limits);
    out.refused_second_when_one =
        !client.rst_on(first).has_value() &&
        client.rst_on(second) ==
            std::optional<ErrorCode>(ErrorCode::kRefusedStream);
  }
  return out;
}

// ------------------------------------------------------------- flow control

DataFrameControlResult probe_data_frame_control(const Target& target,
                                                std::uint32_t sframe) {
  return run_sync(probe_data_frame_control_task(target, sframe));
}

Task<DataFrameControlResult> probe_data_frame_control_task(
    const Target& target, std::uint32_t sframe) {
  DataFrameControlResult out;
  ClientConnection client(target.client_options(with_initial_window(sframe)));
  auto server = target.make_server();
  auto transport = target.make_transport();
  const std::uint32_t sid = client.send_request("/small");
  co_await AwaitExchange(*transport, client, server, target.limits);

  out.headers_received = client.response_headers(sid).has_value();
  const auto data = client.frames_of(FrameType::kData, sid);
  if (data.empty()) {
    out.outcome = SmallWindowOutcome::kNoResponse;
    co_return out;
  }
  out.first_data_size = data.front()->header_block_size;
  if (out.first_data_size == sframe) {
    out.outcome = SmallWindowOutcome::kRespectsWindow;
  } else if (out.first_data_size == 0) {
    out.outcome = SmallWindowOutcome::kZeroLengthData;
  } else {
    out.outcome = SmallWindowOutcome::kOversized;
  }
  co_return out;
}

ZeroWindowHeadersResult probe_zero_window_headers(const Target& target) {
  return run_sync(probe_zero_window_headers_task(target));
}

Task<ZeroWindowHeadersResult> probe_zero_window_headers_task(
    const Target& target) {
  ZeroWindowHeadersResult out;
  ClientConnection client(target.client_options(with_initial_window(0)));
  auto server = target.make_server();
  auto transport = target.make_transport();
  const std::uint32_t sid = client.send_request("/small");
  co_await AwaitExchange(*transport, client, server, target.limits);
  out.headers_received = client.response_headers(sid).has_value();
  for (const auto* ev : client.frames_of(FrameType::kData, sid)) {
    if (ev->header_block_size != 0) out.data_received = true;
  }
  co_return out;
}

WindowUpdateProbeResult probe_window_update_reactions(const Target& target) {
  return run_sync(probe_window_update_reactions_task(target));
}

Task<WindowUpdateProbeResult> probe_window_update_reactions_task(
    const Target& target) {
  WindowUpdateProbeResult out;

  {  // zero increment, stream scope — on a stream mid-response
    ClientOptions opts;
    opts.auto_stream_window_update = false;  // keep the stream open/blocked
    ClientConnection client(target.client_options(opts));
    auto server = target.make_server();
    auto transport = target.make_transport();
    const std::uint32_t sid = client.send_request("/large/0");
    co_await AwaitExchange(*transport, client, server, target.limits);
    client.send_window_update(sid, 0);
    co_await AwaitExchange(*transport, client, server, target.limits);
    out.zero_on_stream = classify_update_reaction(client, sid, &out.zero_debug_data);
  }
  {  // zero increment, connection scope
    ClientConnection client(target.client_options());
    auto server = target.make_server();
    auto transport = target.make_transport();
    client.send_window_update(0, 0);
    co_await AwaitExchange(*transport, client, server, target.limits);
    out.zero_on_connection = classify_update_reaction(client, std::nullopt);
  }
  {  // overflowing increments, stream scope (two halves summing past 2^31-1)
    ClientOptions opts;
    opts.auto_stream_window_update = false;
    ClientConnection client(target.client_options(opts));
    auto server = target.make_server();
    auto transport = target.make_transport();
    const std::uint32_t sid = client.send_request("/large/0");
    co_await AwaitExchange(*transport, client, server, target.limits);
    client.send_window_update(sid, kHalfWindow);
    client.send_window_update(sid, kHalfWindow);
    co_await AwaitExchange(*transport, client, server, target.limits);
    out.large_on_stream = classify_update_reaction(client, sid);
  }
  {  // overflowing increments, connection scope
    ClientConnection client(target.client_options());
    auto server = target.make_server();
    auto transport = target.make_transport();
    const std::uint32_t sid = client.send_request("/large/0");
    (void)sid;
    client.send_window_update(0, kHalfWindow);
    client.send_window_update(0, kHalfWindow);
    co_await AwaitExchange(*transport, client, server, target.limits);
    out.large_on_connection = classify_update_reaction(client, std::nullopt);
  }
  co_return out;
}

// ----------------------------------------------------------------- priority

PriorityProbeResult probe_priority_mechanism(const Target& target) {
  return run_sync(probe_priority_mechanism_task(target));
}

Task<PriorityProbeResult> probe_priority_mechanism_task(const Target& target) {
  // Huge stream windows so only the connection window gates DATA; no
  // automatic connection window updates, so draining it blocks the server.
  ClientOptions opts = with_initial_window(kHugeWindow);
  opts.auto_connection_window_update = false;
  opts.auto_stream_window_update = false;
  ClientConnection client(target.client_options(opts));
  auto server = target.make_server();
  auto transport = target.make_transport();  // one connection, six exchanges
  co_return co_await run_priority_rounds_task(client, server, *transport,
                                              target.limits);
}

PriorityProbeResult run_priority_rounds(ClientConnection& client,
                                        server::Http2Server& server,
                                        net::Transport& transport,
                                        const net::ExchangeLimits& limits) {
  return run_sync(run_priority_rounds_task(client, server, transport, limits));
}

Task<PriorityProbeResult> run_priority_rounds_task(
    ClientConnection& client, server::Http2Server& server,
    net::Transport& transport, net::ExchangeLimits limits) {
  PriorityProbeResult out;

  // Step 1 (Algorithm 1 lines 2-21): drain the connection window.
  const std::uint32_t drain = client.send_request("/object/0");  // 64 KiB
  co_await AwaitExchange(transport, client, server, limits);
  if (client.data_received(drain) != h2::kDefaultInitialWindowSize) {
    co_return out;  // context preparation failed; verdict unreliable
  }
  client.send_rst_stream(drain, ErrorCode::kCancel);
  co_await AwaitExchange(transport, client, server, limits);

  // Step 2 (lines 22-28): six requests with the Table I dependency tree...
  auto prio = [](std::uint32_t dep, bool excl = false) {
    return h2::PriorityInfo{.dependency = dep, .weight_field = 0,
                            .exclusive = excl};
  };
  const std::uint32_t a = client.send_request("/object/1", prio(0));
  const std::uint32_t b = client.send_request("/object/2", prio(a));
  const std::uint32_t c = client.send_request("/object/3", prio(a));
  const std::uint32_t d = client.send_request("/object/4", prio(a));
  const std::uint32_t e = client.send_request("/object/5", prio(b));
  const std::uint32_t f = client.send_request("/object/6", prio(d));
  co_await AwaitExchange(transport, client, server, limits);
  out.headers_during_zero_window =
      client.response_headers(a).has_value();

  // ...then PRIORITY frames reshaping it to  D -> A -> {B, C, F}, E under C
  // (the §5.3.3-style reprioritization the paper describes in §V-E1).
  client.send_priority(d, prio(0));
  client.send_priority(a, prio(d, /*excl=*/true));
  client.send_priority(e, prio(c));
  co_await AwaitExchange(transport, client, server, limits);

  // Step 3 (line 29-30): reopen the connection window and observe order.
  client.send_window_update(0, 0x7FFF'0000u);
  co_await AwaitExchange(transport, client, server, limits);

  const std::vector<std::uint32_t> all = {a, b, c, d, e, f};
  std::map<std::uint32_t, std::size_t> first, last;
  for (const auto& ev : client.events()) {
    if (ev.frame.type() != FrameType::kData) continue;
    const std::uint32_t sid = ev.frame.stream_id;
    if (std::find(all.begin(), all.end(), sid) == all.end()) continue;
    if (!first.count(sid)) first[sid] = ev.sequence;
    last[sid] = ev.sequence;
  }
  for (std::uint32_t sid : all) {
    if (!client.stream_complete(sid)) co_return out;  // ran stays false
  }
  out.ran = true;

  auto check = [&](const std::map<std::uint32_t, std::size_t>& seq) {
    // D before everything; A before everything except D; C before E.
    for (std::uint32_t sid : all) {
      if (sid != d && seq.at(d) >= seq.at(sid)) return false;
      if (sid != d && sid != a && seq.at(a) >= seq.at(sid)) return false;
    }
    return seq.at(c) < seq.at(e);
  };
  out.pass_by_first_data = check(first);
  out.pass_by_last_data = check(last);
  out.pass_by_both = out.pass_by_first_data && out.pass_by_last_data;
  co_return out;
}

SelfDependencyProbeResult probe_self_dependency(const Target& target) {
  return run_sync(probe_self_dependency_task(target));
}

Task<SelfDependencyProbeResult> probe_self_dependency_task(
    const Target& target) {
  SelfDependencyProbeResult out;
  ClientOptions opts;
  opts.auto_stream_window_update = false;  // keep the stream alive
  ClientConnection client(target.client_options(opts));
  auto server = target.make_server();
  auto transport = target.make_transport();
  const std::uint32_t sid = client.send_request("/large/0");
  client.send_priority(sid, {.dependency = sid, .weight_field = 0});
  co_await AwaitExchange(*transport, client, server, target.limits);
  out.reaction = classify_update_reaction(client, sid);
  co_return out;
}

// --------------------------------------------------------------------- push

PushProbeResult probe_server_push(const Target& target,
                                  const std::string& page) {
  return run_sync(probe_server_push_task(target, page));
}

Task<PushProbeResult> probe_server_push_task(const Target& target,
                                             std::string page) {
  PushProbeResult out;
  ClientOptions opts;
  opts.settings = {{SettingId::kEnablePush, 1}};  // §III-D: opt in explicitly
  ClientConnection client(target.client_options(opts));
  auto server = target.make_server();
  auto transport = target.make_transport();
  client.send_request(page);
  co_await AwaitExchange(*transport, client, server, target.limits);
  for (const auto& [promised_id, request] : client.pushes()) {
    out.pushed_paths.emplace_back(hpack::find_header(request, ":path"));
    out.pushed_bytes += client.data_received(promised_id);
  }
  out.push_received = !out.pushed_paths.empty();
  co_return out;
}

// -------------------------------------------------------------------- hpack

HpackProbeResult probe_hpack_ratio(const Target& target, int h,
                                   const std::string& path) {
  return run_sync(probe_hpack_ratio_task(target, h, path));
}

Task<HpackProbeResult> probe_hpack_ratio_task(const Target& target, int h,
                                              std::string path) {
  HpackProbeResult out;
  ClientConnection client(target.client_options());
  auto server = target.make_server();
  auto transport = target.make_transport();
  std::vector<std::uint32_t> streams;
  for (int i = 0; i < h; ++i) {
    // Sequential requests so each response block sees the dynamic table
    // state left by the previous one (§III-E).
    streams.push_back(client.send_request(path));
    co_await AwaitExchange(*transport, client, server, target.limits);
  }
  for (std::uint32_t sid : streams) {
    const auto headers = client.frames_of(FrameType::kHeaders, sid);
    if (headers.empty()) co_return out;  // ran stays false
    out.header_sizes.push_back(headers.front()->header_block_size);
  }
  const double s1 = static_cast<double>(out.header_sizes.front());
  double sum = 0;
  for (std::size_t s : out.header_sizes) sum += static_cast<double>(s);
  out.ratio = sum / (s1 * static_cast<double>(h));
  out.ran = true;
  co_return out;
}

// --------------------------------------------------------------------- ping

PingProbeResult probe_ping(const Target& target, int samples, Rng& rng) {
  PingProbeResult out;
  ClientConnection client(target.client_options());
  auto server = target.make_server();
  auto transport = target.make_transport();
  const std::array<std::uint8_t, 8> opaque = {0x13, 0x37, 0xC0, 0xDE,
                                              0x00, 0x01, 0x02, 0x03};
  client.send_ping(opaque);
  transport->run(client, server, target.limits);
  for (const auto* ev : client.frames_of(FrameType::kPing)) {
    if (ev->frame.has_flag(h2::flags::kAck) &&
        ev->frame.as<h2::PingPayload>().opaque == opaque) {
      out.supported = true;
    }
  }
  if (!out.supported) return out;
  for (int i = 0; i < samples; ++i) {
    out.h2_ping_ms.push_back(target.path.sample_h2_ping(rng));
    out.icmp_ms.push_back(target.path.sample_icmp(rng));
    out.tcp_handshake_ms.push_back(target.path.sample_tcp_handshake(rng));
    out.http11_ms.push_back(target.path.sample_http11(rng));
  }
  return out;
}

}  // namespace h2r::core
