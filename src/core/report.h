// Full characterization of one server — the per-column content of the
// paper's Table III, produced purely from wire-level observation.
#pragma once

#include <string>
#include <vector>

#include "core/probes.h"

namespace h2r::core {

struct Characterization {
  std::string server_key;  ///< profile key / column header

  NegotiationProbeResult negotiation;
  SettingsProbeResult settings;
  MultiplexingProbeResult multiplexing;
  ConcurrencyLimitProbeResult concurrency_limit;
  DataFrameControlResult data_frame_control;
  ZeroWindowHeadersResult zero_window_headers;
  WindowUpdateProbeResult window_update;
  PriorityProbeResult priority;
  SelfDependencyProbeResult self_dependency;
  PushProbeResult push;
  HpackProbeResult hpack;
  PingProbeResult ping;

  /// The fourteen Table III row labels, in the paper's order.
  static const std::vector<std::string>& row_labels();

  /// This server's cell values for the fourteen rows, in the same order
  /// ("support", "RST_STREAM", "pass", ...).
  [[nodiscard]] std::vector<std::string> row_values() const;
};

/// Runs every probe of Section III against @p target.
Characterization characterize(const Target& target, Rng& rng);

/// The RFC 7540 reference column the paper prints alongside the servers.
std::vector<std::string> rfc7540_reference_column();

}  // namespace h2r::core
