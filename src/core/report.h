// Full characterization of one server — the per-column content of the
// paper's Table III, produced purely from wire-level observation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/probes.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace h2r::core {

struct Characterization {
  std::string server_key;  ///< profile key / column header

  NegotiationProbeResult negotiation;
  SettingsProbeResult settings;
  MultiplexingProbeResult multiplexing;
  ConcurrencyLimitProbeResult concurrency_limit;
  DataFrameControlResult data_frame_control;
  ZeroWindowHeadersResult zero_window_headers;
  WindowUpdateProbeResult window_update;
  PriorityProbeResult priority;
  SelfDependencyProbeResult self_dependency;
  PushProbeResult push;
  HpackProbeResult hpack;
  PingProbeResult ping;

  /// Populated by characterize_traced(): the sorted violation tags the
  /// H2Wiretap annotator found across every probe connection, and the wire
  /// metrics folded from the annotated trace.
  std::vector<std::string> violation_tags;
  trace::MetricsRegistry wire_metrics;

  /// The fourteen Table III row labels, in the paper's order.
  static const std::vector<std::string>& row_labels();

  /// This server's cell values for the fourteen rows, in the same order
  /// ("support", "RST_STREAM", "pass", ...).
  [[nodiscard]] std::vector<std::string> row_values() const;
};

/// Runs every probe of Section III against @p target.
Characterization characterize(const Target& target, Rng& rng);

/// characterize() with the H2Wiretap recording every probe connection into
/// @p recorder. Afterwards the trace is annotated in place (violation tags)
/// and folded into the result's wire_metrics.
Characterization characterize_traced(Target target, Rng& rng,
                                     trace::VectorRecorder& recorder);

/// Maps annotator violation tags onto the Table III rows they determine:
/// row label -> cell value, covering the nine deviation-capable rows (flow
/// control, window-update reactions, priority, self-dependency, header
/// compression). Rows absent from a tag set take their RFC-compliant value,
/// so a Table III column can be derived from a trace alone.
std::map<std::string, std::string> derive_table3_quirks(
    const std::vector<std::string>& tags);

/// The RFC 7540 reference column the paper prints alongside the servers.
std::vector<std::string> rfc7540_reference_column();

}  // namespace h2r::core
