// H2Scope's client-side HTTP/2 endpoint.
//
// Unlike a browser, this client exists to send *arbitrary* — including
// deliberately malformed — frame sequences and to record everything the
// server sends back, in arrival order, with wire-level sizes. Every probe
// in probes.h is built from this vocabulary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "h2/constants.h"
#include "h2/frame.h"
#include "h2/flow_control.h"
#include "h2/frame_codec.h"
#include "h2/settings.h"
#include "hpack/decoder.h"
#include "hpack/encoder.h"
#include "trace/recorder.h"
#include "util/bytes.h"
#include "util/status.h"

namespace h2r::core {

/// Why a connection stopped: the probe-side terminal-error taxonomy. A scan
/// needs to distinguish "the site finished talking" from "the transport died
/// under us" from "the site sent bytes that are not HTTP/2".
enum class ClientTerminal : std::uint8_t {
  kQuiescent = 0,   ///< no terminal fault: idle, or cleanly closed (GOAWAY)
  kTransportError,  ///< the transport died (truncation / disconnect)
  kProtocolError,   ///< inbound bytes violated HTTP/2 framing (parse error)
};

std::string_view to_string(ClientTerminal t) noexcept;

/// The terminal classification plus the evidence behind it.
struct TerminalInfo {
  ClientTerminal state = ClientTerminal::kQuiescent;
  Status status;  ///< the underlying error; OK while kQuiescent
  /// Octet offset into the server->client stream: for kProtocolError the
  /// start of the offending frame, for kTransportError the octets received
  /// before the transport died.
  std::uint64_t byte_offset = 0;
  std::uint8_t frame_type = 0;  ///< offending frame's raw type octet
  bool frame_type_known = false;
};

/// One frame as received from the server, with observation metadata.
struct ReceivedFrame {
  h2::Frame frame;
  std::size_t sequence = 0;          ///< arrival index on this connection
  /// Payload octets as parsed: the HPACK fragment size for HEADERS /
  /// PUSH_PROMISE (whole reassembled block on the final CONTINUATION) and
  /// the DATA payload size — authoritative even when the connection runs
  /// with retain_data_payloads off and frame's payload is empty.
  std::size_t header_block_size = 0;
  std::optional<hpack::HeaderList> headers;  ///< decoded block, if any
};

struct ClientOptions {
  /// SETTINGS entries announced in the connection preface. The probes use
  /// this to plant SETTINGS_INITIAL_WINDOW_SIZE = 1 / 0 / 2^31-1 etc.
  std::vector<std::pair<h2::SettingId, std::uint32_t>> settings;
  /// Replenish the connection window as DATA arrives. Algorithm 1 switches
  /// this off to deplete the connection window (§III-C step 1).
  bool auto_connection_window_update = true;
  /// Replenish per-stream windows as DATA arrives.
  bool auto_stream_window_update = true;
  /// Keep the payload octets of received DATA frames. The probes only ever
  /// look at DATA *sizes* (ReceivedFrame::header_block_size and
  /// data_received()), so the scan turns this off and the receive path skips
  /// copying response bodies out of the parser buffer entirely.
  bool retain_data_payloads = true;
  std::string authority = "example.test";
  /// H2Wiretap sink; null disables tracing. When set, the constructor marks
  /// a connection start and every frame the client puts on the wire — plus
  /// parse errors, applied server SETTINGS and HPACK table churn — is
  /// recorded. The server side shares the same sink (see core::Target), so
  /// the recorder sees the full duplex conversation in causal order.
  trace::Recorder* recorder = nullptr;

  /// Replaces (or plants) the SETTINGS_INITIAL_WINDOW_SIZE entry announced
  /// in the preface. Returns *this for chaining.
  ClientOptions& with_initial_window(std::uint32_t window);

  /// The slow-read attacker stance (§VI / attack::AttackScenario), promoted
  /// from the ad-hoc idiom in bench_ablation_dos: announce a tiny per-stream
  /// window and never replenish stream windows — the client "never reads".
  /// Connection-window replenishment stays on: the per-stream window is
  /// already the binding constraint, and starving the connection window too
  /// would throttle the keep-alive traffic the scenario needs.
  static ClientOptions slow_read_stance(std::uint32_t window = 1);
};

class ClientConnection {
 public:
  explicit ClientConnection(ClientOptions options = {});

  /// Rewinds to the just-constructed state (fresh parser, HPACK tables,
  /// empty observation log) while keeping the options and buffer pool; the
  /// preface and initial SETTINGS are re-emitted. Observably identical to a
  /// newly constructed connection, minus the allocations.
  void reset();

  /// reset() with replacement options — the scan's per-worker scratch
  /// reuses one client across sites whose recorder wiring differs.
  void reset(ClientOptions options);

  /// Flip the auto-replenish behaviours mid-connection. The coalesced probe
  /// scheduler reuses one connection across probes that want different
  /// flow-control stances.
  void set_auto_connection_window_update(bool on) noexcept {
    options_.auto_connection_window_update = on;
  }
  void set_auto_stream_window_update(bool on) noexcept {
    options_.auto_stream_window_update = on;
  }

  // ---- transport --------------------------------------------------------
  /// Drains queued client->server bytes (preface + frames).
  [[nodiscard]] Bytes take_output();
  /// Hands a drained output buffer back for reuse (see Http2Server::recycle).
  void recycle(Bytes buffer) { buffer_pool_.release(std::move(buffer)); }
  /// Feeds server->client bytes; frames are parsed and recorded.
  void receive(std::span<const std::uint8_t> bytes);
  /// False after a GOAWAY was received or a parse error poisoned the link.
  [[nodiscard]] bool alive() const noexcept { return !dead_; }
  /// The transport under this connection is gone (net::FaultyTransport's
  /// truncation / disconnect path). Marks the connection dead with a
  /// kTransportError terminal; a GOAWAY or parse error seen earlier wins.
  void on_transport_close(const Status& status);

  /// Client-initiated clean close (§6.8): queues GOAWAY with @p code and
  /// marks the connection done. The terminal stays kQuiescent — this is
  /// the load generator's "I have no more requests" path, not an error.
  /// The GOAWAY still has to be drained via take_output() and shipped.
  void close(h2::ErrorCode code = h2::ErrorCode::kNoError);

  // ---- actions ----------------------------------------------------------
  /// Opens a stream with a GET for @p path; returns the stream id.
  std::uint32_t send_request(const std::string& path,
                             std::optional<h2::PriorityInfo> priority = {},
                             bool end_stream = true);

  /// Opens a POST stream carrying @p body. The body is streamed in DATA
  /// frames under proper client-side flow control: chunks respect the
  /// server's announced stream window and connection window, and stalled
  /// uploads resume when the server's WINDOW_UPDATEs arrive.
  std::uint32_t send_request_with_body(const std::string& path, Bytes body,
                                       const std::string& content_type =
                                           "application/octet-stream");

  /// Octets of queued upload bodies not yet shipped (flow-control blocked).
  [[nodiscard]] std::size_t pending_upload_bytes() const;

  /// Escape hatch: serialize any frame as-is (malformed probes).
  void send_frame(const h2::Frame& frame);

  void send_ping(std::array<std::uint8_t, 8> opaque);
  void send_window_update(std::uint32_t stream_id, std::uint32_t increment);
  void send_priority(std::uint32_t stream_id, const h2::PriorityInfo& info);
  void send_rst_stream(std::uint32_t stream_id, h2::ErrorCode code);
  void send_settings(
      std::vector<std::pair<h2::SettingId, std::uint32_t>> entries);

  // ---- observations -----------------------------------------------------
  [[nodiscard]] const std::vector<ReceivedFrame>& events() const noexcept {
    return events_;
  }

  /// Frames of @p type on @p stream_id, in arrival order.
  [[nodiscard]] std::vector<const ReceivedFrame*> frames_of(
      h2::FrameType type,
      std::optional<std::uint32_t> stream_id = std::nullopt) const;

  /// Server's advertised SETTINGS (first non-ACK SETTINGS frame).
  [[nodiscard]] const h2::SettingsMap& server_settings() const noexcept {
    return server_settings_;
  }
  [[nodiscard]] bool server_settings_received() const noexcept {
    return server_settings_received_;
  }
  /// Raw entry count of the server's first SETTINGS frame (0 = the "NULL"
  /// rows of Tables V-VII: a bare, empty SETTINGS frame).
  [[nodiscard]] std::size_t server_settings_entry_count() const noexcept {
    return server_settings_entry_count_;
  }

  /// Connection-scoped WINDOW_UPDATE increments received before the first
  /// request was sent (the Nginx §V-C idiom).
  [[nodiscard]] std::uint64_t preemptive_window_bonus() const noexcept {
    return preemptive_window_bonus_;
  }

  [[nodiscard]] bool goaway_received() const noexcept { return goaway_.has_value(); }
  [[nodiscard]] const std::optional<h2::GoawayPayload>& goaway() const {
    return goaway_;
  }
  /// RST_STREAM code received on @p stream_id, if any.
  [[nodiscard]] std::optional<h2::ErrorCode> rst_on(std::uint32_t stream_id) const;

  /// Total DATA payload octets received on @p stream_id.
  [[nodiscard]] std::size_t data_received(std::uint32_t stream_id) const;
  /// True once END_STREAM was seen on @p stream_id.
  [[nodiscard]] bool stream_complete(std::uint32_t stream_id) const;
  /// Decoded response headers for @p stream_id (first HEADERS), if seen.
  [[nodiscard]] std::optional<hpack::HeaderList> response_headers(
      std::uint32_t stream_id) const;
  /// Streams promised to us via PUSH_PROMISE, with their request headers.
  [[nodiscard]] const std::map<std::uint32_t, hpack::HeaderList>& pushes() const {
    return pushed_;
  }

  [[nodiscard]] std::uint32_t last_stream_id() const noexcept {
    return next_stream_id_ >= 2 ? next_stream_id_ - 2 : 0;
  }

  /// The wiretap sink this connection records into (null when off).
  [[nodiscard]] trace::Recorder* recorder() const noexcept {
    return options_.recorder;
  }

  /// Terminal classification: why (if at all) this connection stopped.
  [[nodiscard]] const TerminalInfo& terminal() const noexcept {
    return terminal_;
  }

 private:
  void on_frame(const h2::FrameView& view);
  /// encoder_.encode with HPACK table-churn trace events. Only the encoding
  /// endpoint records churn — the peer's decoder replays the identical
  /// instruction stream, so recording both sides would double-count.
  Bytes encode_block(const hpack::HeaderList& headers);
  void note_hpack_delta(trace::Direction dir, std::uint64_t inserts,
                        std::uint64_t evictions);

  ClientOptions options_;
  h2::FrameParser parser_;
  hpack::Encoder encoder_;
  hpack::Decoder decoder_;
  h2::SettingsMap server_settings_;
  bool server_settings_received_ = false;
  std::size_t server_settings_entry_count_ = 0;

  std::uint32_t next_stream_id_ = 1;
  bool sent_any_request_ = false;
  bool response_seen_ = false;
  std::uint64_t preemptive_window_bonus_ = 0;

  std::vector<ReceivedFrame> events_;
  std::map<std::uint32_t, std::size_t> data_bytes_;
  std::map<std::uint32_t, bool> complete_;
  std::map<std::uint32_t, h2::ErrorCode> rst_;
  std::map<std::uint32_t, hpack::HeaderList> pushed_;
  std::optional<h2::GoawayPayload> goaway_;

  // Reassembly of server header blocks split across CONTINUATIONs (§4.3).
  std::optional<std::uint32_t> continuation_stream_;
  Bytes continuation_buffer_;
  bool continuation_end_stream_ = false;

  // Upload (client->server DATA) flow control state.
  struct Upload {
    Bytes body;
    std::size_t offset = 0;
    h2::FlowWindow window;  ///< stream-scope budget, from server SETTINGS
  };
  void flush_uploads();
  std::map<std::uint32_t, Upload> uploads_;
  h2::FlowWindow upload_conn_window_{h2::kDefaultInitialWindowSize};
  std::uint32_t upload_initial_window_ = h2::kDefaultInitialWindowSize;

  ByteWriter out_;
  BufferPool buffer_pool_;
  bool dead_ = false;
  TerminalInfo terminal_;
};

}  // namespace h2r::core
