#include "core/session.h"

#include "net/transport.h"

namespace h2r::core {

// The shim itself is the one sanctioned caller of the deprecated API.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

int run_exchange(ClientConnection& client, server::Http2Server& server,
                 int max_rounds) {
  net::LockstepTransport transport(client.recorder());
  return transport.run(client, server, {.max_rounds = max_rounds}).rounds;
}

#pragma GCC diagnostic pop

}  // namespace h2r::core
