#include "core/session.h"

namespace h2r::core {

int run_exchange(ClientConnection& client, server::Http2Server& server,
                 int max_rounds) {
  int rounds = 0;
  for (; rounds < max_rounds; ++rounds) {
    Bytes c2s = client.take_output();
    if (!c2s.empty()) server.receive(c2s);
    Bytes s2c = server.take_output();
    if (!s2c.empty()) client.receive(s2c);
    const bool quiescent = c2s.empty() && s2c.empty();
    if (!quiescent && client.recorder() != nullptr) {
      trace::TraceEvent mark;
      mark.kind = trace::EventKind::kRoundMark;
      mark.detail_a = static_cast<std::uint32_t>(rounds);
      client.recorder()->record(std::move(mark));
    }
    // Both directions have been shipped; hand the drained buffers back so
    // the next round reuses their capacity instead of reallocating.
    client.recycle(std::move(c2s));
    server.recycle(std::move(s2c));
    if (quiescent) break;
  }
  return rounds;
}

}  // namespace h2r::core
