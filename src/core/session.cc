#include "core/session.h"

#include <set>
#include <string>
#include <utility>

#include "h2/constants.h"
#include "hpack/header_field.h"

namespace h2r::core {
namespace {

using h2::FrameType;
using h2::SettingId;

// Huge stream windows leave the connection window as the only DATA gate —
// the precondition of Algorithm 1 (probe_priority_mechanism's fresh
// connection plants the same value in its preface SETTINGS).
constexpr std::uint32_t kHugeWindow = 0x7FFF'FFFFu;

}  // namespace

ProbeSession::ProbeSession(const Target& target)
    : ProbeSession(target, Options(), nullptr) {}

ProbeSession::ProbeSession(const Target& target, Options options,
                           SessionScratch* scratch)
    : target_(target),
      options_(options),
      scratch_(scratch != nullptr ? scratch : &own_) {}

void ProbeSession::ensure_baseline() {
  if (baseline_done_) return;
  baseline_done_ = true;

  // Client before server, like every fresh probe: the wiretap's
  // connection-start marker has to precede the server's preface frames.
  if (scratch_->client) {
    scratch_->client->reset(target_.client_options());
  } else {
    scratch_->client.emplace(target_.client_options());
  }
  if (scratch_->server) {
    target_.reset_server(*scratch_->server);
  } else {
    scratch_->server.emplace(target_.make_server());
  }
  transport_ = target_.make_transport();

  // The baseline conversation is the byte-identical prefix of the fresh
  // settings probe (request 1), the fresh push probe (request 1's
  // promises) and the fresh HPACK probe (all H requests, §III-E's
  // sequential table-warming), so one pass yields all three readouts.
  ClientConnection& client = *scratch_->client;
  const int requests = options_.expect_hpack ? options_.hpack_h : 1;
  baseline_streams_.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    baseline_streams_.push_back(client.send_request("/"));
    transport_->run(client, *scratch_->server, target_.limits);
  }
  baseline_clean_ = client.alive() && !client.goaway_received();
  shared_ok_ = baseline_clean_;
}

SettingsProbeResult ProbeSession::settings() {
  ensure_baseline();
  // Every field below is pinned by the first exchange of the baseline —
  // the later requests can't rewrite the first SETTINGS frame, the
  // preemptive WINDOW_UPDATE tally, or request 1's response headers — so
  // the readout equals probe_settings() on a fresh connection even when
  // the connection degrades afterwards.
  SettingsProbeResult out;
  const ClientConnection& client = *scratch_->client;
  out.settings_entry_count = client.server_settings_entry_count();
  const auto& s = client.server_settings();
  out.header_table_size = s.raw(SettingId::kHeaderTableSize);
  out.max_concurrent_streams = s.raw(SettingId::kMaxConcurrentStreams);
  out.initial_window_size = s.raw(SettingId::kInitialWindowSize);
  out.max_frame_size = s.raw(SettingId::kMaxFrameSize);
  out.max_header_list_size = s.raw(SettingId::kMaxHeaderListSize);
  out.preemptive_window_bonus = client.preemptive_window_bonus();
  if (auto headers = client.response_headers(baseline_streams_.front())) {
    out.headers_received = true;
    out.server_header = std::string(hpack::find_header(*headers, "server"));
  }
  return out;
}

PriorityProbeResult ProbeSession::priority() {
  ensure_baseline();
  if (!shared_ok_) return probe_priority_mechanism(target_);
  ClientConnection& client = *scratch_->client;
  server::Http2Server& server = *scratch_->server;

  // Recreate the fresh probe's preface stance mid-connection: huge stream
  // windows (the SETTINGS frame rides in front of the drain request, as
  // the preface SETTINGS does) and no automatic replenishment. The
  // baseline left the connection send window at exactly the 65,535-octet
  // default — every octet it consumed was replenished by an automatic
  // WINDOW_UPDATE — which is the state Algorithm 1's drain step assumes.
  client.set_auto_connection_window_update(false);
  client.set_auto_stream_window_update(false);
  client.send_settings({{SettingId::kInitialWindowSize, kHugeWindow}});

  PriorityProbeResult out =
      run_priority_rounds(client, server, *transport_, target_.limits);

  if (client.alive() && !client.goaway_received()) {
    // Restore the default stance for the remaining shared phases.
    client.send_settings(
        {{SettingId::kInitialWindowSize, h2::kDefaultInitialWindowSize}});
    client.set_auto_connection_window_update(true);
    client.set_auto_stream_window_update(true);
    transport_->run(client, server, target_.limits);
  }
  if (!client.alive() || client.goaway_received()) shared_ok_ = false;

  if (!out.ran) {
    // The context preparation failed on the shared connection. A genuine
    // flow-control violation would fail identically on a fresh one, but a
    // shared-state artifact would not — re-measure fresh so the verdict
    // matches the sequential scan either way, and stop sharing.
    shared_ok_ = false;
    return probe_priority_mechanism(target_);
  }
  return out;
}

SelfDependencyProbeResult ProbeSession::self_dependency() {
  ensure_baseline();
  // Last of the connection-touching phases: the reaction may well be a
  // GOAWAY, and classify_update_reaction treats *any* received GOAWAY as
  // the reaction — so the guard also ensures no earlier phase's GOAWAY is
  // misattributed to this probe.
  if (!shared_ok_) return probe_self_dependency(target_);
  ClientConnection& client = *scratch_->client;
  client.set_auto_connection_window_update(true);
  client.set_auto_stream_window_update(false);  // keep the stream alive
  const std::uint32_t sid = client.send_request("/large/0");
  client.send_priority(sid, {.dependency = sid, .weight_field = 0});
  transport_->run(client, *scratch_->server, target_.limits);
  SelfDependencyProbeResult out;
  out.reaction = classify_update_reaction(client, sid);
  client.set_auto_stream_window_update(true);
  if (!client.alive() || client.goaway_received()) shared_ok_ = false;
  return out;
}

PushProbeResult ProbeSession::push() {
  ensure_baseline();
  if (!baseline_clean_) return probe_server_push(target_);
  PushProbeResult out;
  const ClientConnection& client = *scratch_->client;
  // Only the promises born from the baseline's *first* request count: the
  // later baseline requests for the same page re-trigger the same pushes,
  // which a fresh probe (one request, one page) would never see.
  const std::uint32_t first = baseline_streams_.front();
  std::set<std::uint32_t> promised_by_first;
  for (const auto& ev : client.events()) {
    if (ev.frame.type() != FrameType::kPushPromise) continue;
    if (ev.frame.stream_id != first) continue;
    promised_by_first.insert(
        ev.frame.as<h2::PushPromisePayload>().promised_stream_id);
  }
  for (const auto& [promised_id, request] : client.pushes()) {
    if (promised_by_first.count(promised_id) == 0) continue;
    out.pushed_paths.emplace_back(hpack::find_header(request, ":path"));
    out.pushed_bytes += client.data_received(promised_id);
  }
  out.push_received = !out.pushed_paths.empty();
  return out;
}

HpackProbeResult ProbeSession::hpack_ratio() {
  ensure_baseline();
  if (!baseline_clean_ || !options_.expect_hpack) {
    return probe_hpack_ratio(target_, options_.hpack_h);
  }
  // Equation 1 over the baseline's response header sizes — computed with
  // the same loop as probe_hpack_ratio over what is, byte for byte, the
  // same conversation, so even the floating-point ratio is bit-identical.
  HpackProbeResult out;
  const ClientConnection& client = *scratch_->client;
  for (std::uint32_t sid : baseline_streams_) {
    const auto headers = client.frames_of(FrameType::kHeaders, sid);
    if (headers.empty()) return out;  // ran stays false
    out.header_sizes.push_back(headers.front()->header_block_size);
  }
  const double s1 = static_cast<double>(out.header_sizes.front());
  double sum = 0;
  for (std::size_t s : out.header_sizes) sum += static_cast<double>(s);
  out.ratio = sum / (s1 * static_cast<double>(options_.hpack_h));
  out.ran = true;
  return out;
}

}  // namespace h2r::core
