#include "core/session.h"

namespace h2r::core {

int run_exchange(ClientConnection& client, server::Http2Server& server,
                 int max_rounds) {
  int rounds = 0;
  for (; rounds < max_rounds; ++rounds) {
    const Bytes c2s = client.take_output();
    if (!c2s.empty()) server.receive(c2s);
    const Bytes s2c = server.take_output();
    if (!s2c.empty()) client.receive(s2c);
    if (c2s.empty() && s2c.empty()) break;
  }
  return rounds;
}

}  // namespace h2r::core
