#include "attack/scenario.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "core/client.h"
#include "h2/frame.h"
#include "server/engine.h"
#include "util/rng.h"

namespace h2r::attack {

std::string_view to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kSlowRead:
      return "slow-read";
    case ScenarioKind::kSlowPost:
      return "slow-post";
    case ScenarioKind::kRapidReset:
      return "rapid-reset";
    case ScenarioKind::kPingFlood:
      return "ping-flood";
    case ScenarioKind::kSettingsFlood:
      return "settings-flood";
    case ScenarioKind::kPriorityChurn:
      return "priority-churn";
  }
  return "?";
}

std::vector<ScenarioKind> all_scenarios() {
  return {ScenarioKind::kSlowRead,      ScenarioKind::kSlowPost,
          ScenarioKind::kRapidReset,    ScenarioKind::kPingFlood,
          ScenarioKind::kSettingsFlood, ScenarioKind::kPriorityChurn};
}

trace::AttackClass expected_class(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kSlowRead:
      return trace::AttackClass::kSlowRead;
    case ScenarioKind::kSlowPost:
      return trace::AttackClass::kSlowPost;
    case ScenarioKind::kRapidReset:
      return trace::AttackClass::kRapidReset;
    case ScenarioKind::kPingFlood:
    case ScenarioKind::kSettingsFlood:
      return trace::AttackClass::kControlFlood;
    case ScenarioKind::kPriorityChurn:
      return trace::AttackClass::kPriorityChurn;
  }
  return trace::AttackClass::kNone;
}

std::string_view to_string(Termination t) noexcept {
  switch (t) {
    case Termination::kAttackerExhausted:
      return "attacker-exhausted";
    case Termination::kMitigatedGoaway:
      return "mitigated-goaway";
    case Termination::kErrorGoaway:
      return "error-goaway";
    case Termination::kConnectionDead:
      return "connection-dead";
  }
  return "?";
}

std::string AttackResult::fingerprint() const {
  std::ostringstream out;
  out << to_string(kind) << '|' << to_string(termination) << '|' << rounds_run
      << '|' << frames_sent << '|' << bytes_c2s << '|' << bytes_s2c << '|'
      << peak_pinned_octets << '|' << peak_active_streams << '|'
      << peak_decoder_table << '|' << server::to_string(final_level) << '|'
      << trace::to_string(suspected) << '|'
      << (goaway_received ? h2::to_string(goaway_code) : "no-goaway") << '|'
      << (deadline_hit ? "deadline" : "clean");
  return out.str();
}

namespace {

/// One round's worth of attack traffic. Returns frames injected. The
/// scenarios never rely on client-side automation beyond what the stance
/// options configure — every hostile frame is queued explicitly, so the
/// wire sequence is a pure function of (config, round).
std::uint64_t inject_round(const ScenarioConfig& cfg,
                           core::ClientConnection& client,
                           std::uint32_t round, Rng& rng,
                           std::vector<std::uint32_t>& open_streams) {
  std::uint64_t frames = 0;
  switch (cfg.kind) {
    case ScenarioKind::kSlowRead: {
      if (round == 0) {
        // Open every victim stream against the biggest testbed resources;
        // the tiny stream window from slow_read_stance pins all but the
        // first Sframe octets of each response.
        for (std::uint32_t i = 0; i < cfg.streams; ++i) {
          open_streams.push_back(
              client.send_request("/large/" + std::to_string(i % 8)));
          ++frames;
        }
        return frames;
      }
      // Keep-alive that ages the server's frame clock without reading:
      // connection-scoped WINDOW_UPDATEs are deliberately *not* PINGs, so
      // the traffic trips no control-frame budget and the per-stream
      // windows (the binding constraint) stay shut.
      for (int i = 0; i < 4; ++i) {
        client.send_window_update(0, 1);
        ++frames;
      }
      return frames;
    }
    case ScenarioKind::kSlowPost: {
      if (round == 0) {
        // Open uploads: HEADERS without END_STREAM, body never finished.
        for (std::uint32_t i = 0; i < cfg.streams; ++i) {
          open_streams.push_back(
              client.send_request("/upload", {}, /*end_stream=*/false));
          ++frames;
        }
        return frames;
      }
      // Dribble one tiny DATA frame per stream per round, END_STREAM never.
      for (std::uint32_t sid : open_streams) {
        client.send_frame(h2::make_data(
            sid, Bytes(cfg.dribble_bytes, 0x2e), /*end_stream=*/false));
        ++frames;
      }
      return frames;
    }
    case ScenarioKind::kRapidReset: {
      // Request + immediate cancel: the server pays header decode and
      // response setup for every pair, the attacker pays two tiny frames.
      for (std::uint32_t i = 0; i < cfg.frames_per_round / 2; ++i) {
        const std::uint32_t sid = client.send_request("/small");
        client.send_rst_stream(sid, h2::ErrorCode::kCancel);
        frames += 2;
      }
      return frames;
    }
    case ScenarioKind::kPingFlood: {
      for (std::uint32_t i = 0; i < cfg.frames_per_round; ++i) {
        std::array<std::uint8_t, 8> opaque{};
        std::uint64_t v = rng.next_u64();
        for (auto& b : opaque) {
          b = static_cast<std::uint8_t>(v);
          v >>= 8;
        }
        client.send_ping(opaque);
        ++frames;
      }
      return frames;
    }
    case ScenarioKind::kSettingsFlood: {
      for (std::uint32_t i = 0; i < cfg.frames_per_round; ++i) {
        client.send_settings({});  // empty, but each one demands an ACK
        ++frames;
      }
      return frames;
    }
    case ScenarioKind::kPriorityChurn: {
      // Random reparenting across a growing idle-stream id space — each
      // frame forces a detach/attach (and possibly a §5.3.3 subtree move).
      for (std::uint32_t i = 0; i < cfg.frames_per_round; ++i) {
        const std::uint32_t span =
            cfg.frames_per_round * (round + 1);  // ids seen so far
        const std::uint32_t sid =
            2 * static_cast<std::uint32_t>(rng.next_below(span)) + 1;
        std::uint32_t dep =
            2 * static_cast<std::uint32_t>(rng.next_below(span)) + 1;
        if (dep == sid) dep = 0;  // self-dependency is a different probe
        client.send_priority(
            sid, {.dependency = dep,
                  .weight_field =
                      static_cast<std::uint8_t>(rng.next_below(256)),
                  .exclusive = rng.next_bool(0.3)});
        ++frames;
      }
      return frames;
    }
  }
  return frames;
}

}  // namespace

AttackResult AttackScenario::run(const core::Target& target) const {
  const ScenarioConfig& cfg = config_;
  AttackResult result;
  result.kind = cfg.kind;

  // Client before server: its constructor marks the wiretap connection
  // start, so the server's preface frames land inside the segment (the
  // SequenceDetector scopes its rules per connection segment).
  core::ClientOptions opts =
      cfg.kind == ScenarioKind::kSlowRead
          ? target.client_options(
                core::ClientOptions::slow_read_stance(cfg.tiny_window))
          : target.client_options();
  core::ClientConnection client(opts);
  server::Http2Server server = target.make_server();
  std::unique_ptr<net::Transport> transport = target.make_transport();

  std::uint64_t seed_state = cfg.seed;
  Rng rng(splitmix64(seed_state) ^ static_cast<std::uint64_t>(cfg.kind));
  std::vector<std::uint32_t> open_streams;

  for (std::uint32_t round = 0; round < cfg.rounds; ++round) {
    result.frames_sent +=
        inject_round(cfg, client, round, rng, open_streams);
    const net::ExchangeResult ex =
        transport->run(client, server, cfg.round_limits);
    ++result.rounds_run;
    result.bytes_c2s += ex.bytes_c2s;
    result.bytes_s2c += ex.bytes_s2c;
    result.peak_active_streams =
        std::max(result.peak_active_streams, server.active_stream_count());
    result.peak_decoder_table =
        std::max(result.peak_decoder_table, server.decoder_table_octets());
    if (ex.deadline_hit()) {
      result.deadline_hit = true;
      result.termination = Termination::kConnectionDead;
      break;
    }
    if (ex.outcome == net::ExchangeOutcome::kDisconnected ||
        !server.alive() || !client.alive()) {
      if (client.goaway_received()) {
        result.goaway_received = true;
        result.goaway_code = client.goaway()->error;
        result.termination =
            result.goaway_code == h2::ErrorCode::kEnhanceYourCalm
                ? Termination::kMitigatedGoaway
                : Termination::kErrorGoaway;
      } else {
        result.termination = Termination::kConnectionDead;
      }
      break;
    }
  }
  // The pinned gauge is a server-side high-water mark already; the stream /
  // table peaks above are per-round samples (exact for these scenarios,
  // whose per-round state is monotone within a round).
  result.peak_pinned_octets = server.peak_pinned_octets();
  result.final_level = server.mitigation_level();
  result.suspected = server.suspected_attack();
  if (!result.goaway_received && client.goaway_received()) {
    result.goaway_received = true;
    result.goaway_code = client.goaway()->error;
  }
  return result;
}

}  // namespace h2r::attack
