// The slow-HTTP/2 attack scenario pack (§VI of the paper, taxonomy from
// "Delays have Dangerous Ends", PAPERS.md).
//
// Each scenario is a parameterized adversarial *client* built from the same
// core::ClientConnection vocabulary the probes use, driven round-by-round
// over the injectable net::Transport seam. A round injects one batch of
// attack traffic, pumps the exchange to quiescence under a per-round
// deadline, then samples the server's resource gauges — so the result
// records not just *whether* the server survived but the peak state the
// attack pinned (response octets, live streams, HPACK table occupancy) and
// the exact frame-clocked point where mitigation engaged.
//
// Everything is deterministic: no wall clock, seeded Rng for the churn
// scenarios, and the transport/mitigation/detector stack all age in rounds
// or received frames. The same (config, target) pair reproduces the same
// AttackResult byte-for-byte, which fingerprint() pins across H2R_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/probes.h"
#include "net/transport.h"
#include "server/mitigation.h"
#include "trace/detector.h"

namespace h2r::attack {

/// The runnable scenarios. Two scenarios (PING and SETTINGS floods) map to
/// one detector class (kControlFlood); the rest map 1:1.
enum class ScenarioKind : std::uint8_t {
  kSlowRead = 0,    ///< tiny stream windows, responses pinned forever
  kSlowPost,        ///< open uploads dribbling 1-octet DATA frames
  kRapidReset,      ///< request + immediate RST_STREAM churn
  kPingFlood,       ///< non-ACK PING flood (ack amplification)
  kSettingsFlood,   ///< empty SETTINGS flood (ack amplification)
  kPriorityChurn,   ///< seeded PRIORITY flood rebuilding the §5.3 tree
};
inline constexpr std::size_t kScenarioCount = 6;

std::string_view to_string(ScenarioKind kind) noexcept;

/// All scenarios, in declaration order (the matrix row order).
std::vector<ScenarioKind> all_scenarios();

/// The detector/mitigation class this scenario should be classified as.
trace::AttackClass expected_class(ScenarioKind kind) noexcept;

/// How an attack run ended. Every scenario terminates in exactly one of
/// these bounded states — there is no "still running" outcome.
enum class Termination : std::uint8_t {
  /// The attacker ran out of script (all rounds executed) with the
  /// connection still up. The interesting fields are then the peaks and the
  /// final mitigation level (throttle / rst-offenders contain the attack
  /// without dropping the connection).
  kAttackerExhausted = 0,
  /// The server closed the connection with GOAWAY ENHANCE_YOUR_CALM — the
  /// distinguishable mitigation terminal (server/mitigation.h).
  kMitigatedGoaway,
  /// The server closed with any other GOAWAY code (a protocol-error path
  /// tripped before mitigation did).
  kErrorGoaway,
  /// The exchange died below HTTP/2: transport disconnect, per-round
  /// deadline, or a client-side parse terminal.
  kConnectionDead,
};

std::string_view to_string(Termination t) noexcept;

/// Scenario parameters. Defaults are the full-scale bench shape; the CI
/// smoke divides by H2R_SCALE with floors that keep every scenario above
/// its detector thresholds (see bench/bench_attack_matrix note).
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kSlowRead;
  std::uint64_t seed = 1;       ///< churn randomness (PRIORITY deps, PING ids)
  std::uint32_t rounds = 256;   ///< attack rounds (inject + pump each)
  std::uint32_t streams = 32;   ///< victim streams (slow-read / slow-post)
  std::uint32_t tiny_window = 1;     ///< slow-read SETTINGS_INITIAL_WINDOW_SIZE
  std::uint32_t dribble_bytes = 1;   ///< slow-post DATA chunk octets
  std::uint32_t frames_per_round = 32;  ///< flood intensity (reset/ping/...)
  /// Per-round pump deadline — a single round can never hang the harness.
  net::ExchangeLimits round_limits{.max_rounds = 64,
                                   .max_bytes = 32ull * 1024 * 1024};
};

/// What one attack run did and how it was stopped.
struct AttackResult {
  ScenarioKind kind = ScenarioKind::kSlowRead;
  Termination termination = Termination::kAttackerExhausted;
  std::uint32_t rounds_run = 0;     ///< attack rounds actually executed
  std::uint64_t frames_sent = 0;    ///< attack frames the client injected
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;
  /// Server resource peaks over the whole run (gauge high-water marks).
  std::size_t peak_pinned_octets = 0;
  std::size_t peak_active_streams = 0;
  std::size_t peak_decoder_table = 0;
  /// Where the server's escalation ladder ended (kNone = never engaged).
  server::MitigationLevel final_level = server::MitigationLevel::kNone;
  /// The server's own classification of the attack (kNone = unclassified).
  trace::AttackClass suspected = trace::AttackClass::kNone;
  /// GOAWAY error code the client received, if any.
  bool goaway_received = false;
  h2::ErrorCode goaway_code = h2::ErrorCode::kNoError;
  bool deadline_hit = false;  ///< some round tripped its pump deadline

  /// True whenever the run ended in a classified, bounded state — the
  /// acceptance property the matrix asserts for every cell.
  [[nodiscard]] bool bounded() const noexcept {
    return termination != Termination::kConnectionDead || !deadline_hit;
  }

  /// Stable one-line digest of every field above; byte-identical results
  /// have byte-identical fingerprints (the H2R_THREADS determinism pin).
  [[nodiscard]] std::string fingerprint() const;
};

/// Runs one scenario against one target. Stateless apart from the config:
/// run() builds a fresh server/client/transport triple from the target each
/// call, so one scenario object can sweep a whole profile matrix.
class AttackScenario {
 public:
  explicit AttackScenario(ScenarioConfig config) : config_(config) {}

  [[nodiscard]] const ScenarioConfig& config() const noexcept {
    return config_;
  }

  /// Executes the attack to one of the four bounded terminals.
  [[nodiscard]] AttackResult run(const core::Target& target) const;

 private:
  ScenarioConfig config_;
};

}  // namespace h2r::attack
