// Attack demo: the three DoS vectors the paper's Section VI warns about,
// staged one by one against a live engine so the mechanics are visible —
// the interactive companion to bench_ablation_dos.
//
//   $ ./build/examples/attack_demo
#include <cstdio>

#include "core/client.h"
#include "net/transport.h"
#include "hpack/encoder.h"
#include "server/engine.h"
#include "util/rng.h"

namespace {

using namespace h2r;

server::Http2Server victim() {
  return server::Http2Server(server::h2o_profile(),
                             server::Site::standard_testbed_site());
}

void slow_read_attack() {
  std::printf("== Attack 1: slow read (malicious receiver, §V-D1 / [20]) ==\n");
  auto server = victim();
  // Tiny INITIAL_WINDOW_SIZE, never release anything.
  core::ClientConnection client(core::ClientOptions::slow_read_stance());
  for (int i = 0; i < 16; ++i) {
    client.send_request("/large/" + std::to_string(i % 8));
  }
  net::LockstepTransport().run(client, server);
  std::printf(
      "  16 requests, SETTINGS_INITIAL_WINDOW_SIZE=1, no window updates:\n"
      "  server now pins %zu bytes of response data for 16 octets leaked\n"
      "  (amplification bounded only by MAX_CONCURRENT_STREAMS)\n\n",
      server.pending_response_octets());
}

void priority_churn_attack() {
  std::printf("== Attack 2: PRIORITY churn (complexity attack, §VI / [26]) ==\n");
  auto server = victim();
  core::ClientConnection client;
  Rng rng(1);
  const int frames = 4096;
  for (int i = 0; i < frames; ++i) {
    const std::uint32_t sid = 2 * static_cast<std::uint32_t>(i % 512) + 1;
    const std::uint32_t dep =
        i == 0 ? 0 : 2 * static_cast<std::uint32_t>(rng.next_below(512)) + 1;
    if (dep == sid) continue;
    client.send_priority(sid, {.dependency = dep,
                               .weight_field =
                                   static_cast<std::uint8_t>(rng.next_below(256)),
                               .exclusive = rng.next_bool(0.3)});
  }
  net::LockstepTransport().run(client, server);
  std::printf(
      "  %d PRIORITY frames against idle streams: the server materialized a\n"
      "  %zu-node dependency tree and rebuilt it on every frame — pure\n"
      "  attacker-controlled CPU and memory, no request ever sent\n\n",
      frames, server.priority_tree().size());
}

void header_bomb_attack() {
  std::printf("== Attack 3: HPACK table churn (header bomb, §VI) ==\n");
  auto server = victim();
  core::ClientConnection client;
  hpack::Encoder attacker;
  for (int i = 0; i < 64; ++i) {
    hpack::HeaderList headers = {{":method", "GET"},
                                 {":scheme", "https"},
                                 {":authority", "victim"},
                                 {":path", "/small"}};
    for (int j = 0; j < 16; ++j) {
      headers.emplace_back("x-bomb-" + std::to_string(i * 16 + j),
                           std::string(48, 'x'));
    }
    client.send_frame(h2::make_headers(
        static_cast<std::uint32_t>(i * 2 + 1), attacker.encode(headers), true));
  }
  net::LockstepTransport().run(client, server);
  std::printf(
      "  64 requests x 16 unique 48-octet headers: decoder table holds %zu\n"
      "  of a %u-octet cap — the default SETTINGS_HEADER_TABLE_SIZE bounds\n"
      "  the damage, which is why §V-C finds every server keeping it\n\n",
      server.decoder_table_octets(), server.profile().header_table_size);
}

}  // namespace

int main() {
  std::printf(
      "Demonstrating the HTTP/2 abuse vectors discussed in Section VI of\n"
      "\"Are HTTP/2 Servers Ready Yet?\" against the in-process engine.\n\n");
  slow_read_attack();
  priority_churn_attack();
  header_bomb_attack();
  std::printf(
      "Defenses the paper suggests: lower bounds on client window values,\n"
      "server-side priority-tree rate limits, and conservative header-table\n"
      "sizes (the deployed default).\n");
  return 0;
}
