// h2scope_cli: the command-line face of the probe suite, mirroring how the
// paper's released H2Scope tool is used — pick a target, pick probes, get a
// frame-level verdict for each.
//
//   $ ./build/examples/h2scope_cli --target nginx --probe all
//   $ ./build/examples/h2scope_cli --target litespeed --probe flow,priority
//   $ ./build/examples/h2scope_cli --list
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>

#include "core/report.h"

namespace {

using namespace h2r;

std::set<std::string> parse_probes(const std::string& csv) {
  std::set<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.insert(item);
  if (out.count("all")) {
    out = {"negotiation", "settings", "multiplexing", "flow",
           "priority",    "push",     "hpack",        "ping"};
  }
  return out;
}

void usage() {
  std::printf(
      "usage: h2scope_cli [--target PROFILE] [--probe LIST|all] [--list]\n"
      "probes: negotiation settings multiplexing flow priority push hpack "
      "ping\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string target_key = "nginx";
  std::string probe_csv = "all";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--target") && i + 1 < argc) {
      target_key = argv[++i];
    } else if (!std::strcmp(argv[i], "--probe") && i + 1 < argc) {
      probe_csv = argv[++i];
    } else if (!std::strcmp(argv[i], "--list")) {
      std::printf(
          "profiles: nginx litespeed h2o nghttpd tengine apache gse "
          "cloudflare-nginx ideawebserver tengine-aserver\n");
      return 0;
    } else {
      usage();
      return 1;
    }
  }

  core::Target target;
  try {
    target = core::Target::testbed(server::profile_by_key(target_key));
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown profile '%s' (try --list)\n",
                 target_key.c_str());
    return 1;
  }
  const auto probes = parse_probes(probe_csv);
  std::printf("H2Scope scanning %s ...\n\n", target.host.c_str());

  if (probes.count("negotiation")) {
    const auto r = core::probe_negotiation(target);
    std::printf("[negotiation]  ALPN h2: %s   NPN h2: %s   established: %s\n",
                r.alpn_h2 ? "yes" : "no", r.npn_h2 ? "yes" : "no",
                r.h2_established ? "yes" : "no");
    const auto h2c = core::probe_h2c_upgrade(target);
    std::printf("[negotiation]  h2c upgrade: %s (\"%s\")\n",
                h2c.switched ? "accepted" : "declined",
                h2c.status_line.c_str());
  }
  if (probes.count("settings")) {
    const auto r = core::probe_settings(target);
    auto opt = [](std::optional<std::uint32_t> v) {
      return v ? std::to_string(*v) : std::string("-");
    };
    std::printf(
        "[settings]     MCS=%s IWS=%s MFS=%s MHLS=%s entries=%zu%s "
        "server=\"%s\"\n",
        opt(r.max_concurrent_streams).c_str(),
        opt(r.initial_window_size).c_str(), opt(r.max_frame_size).c_str(),
        opt(r.max_header_list_size).c_str(), r.settings_entry_count,
        r.preemptive_window_bonus ? " +preemptive-WINDOW_UPDATE" : "",
        r.server_header.c_str());
  }
  if (probes.count("multiplexing")) {
    const auto r = core::probe_multiplexing(target);
    std::printf("[multiplexing] %s (%d interleave switches, %d/4 complete)\n",
                r.supported ? "supported" : "NOT supported",
                r.interleave_switches, r.streams_completed);
  }
  if (probes.count("flow")) {
    const auto sframe = core::probe_data_frame_control(target);
    const auto zero = core::probe_zero_window_headers(target);
    const auto wu = core::probe_window_update_reactions(target);
    std::printf("[flow]         Sframe=1 -> %s (first DATA %zu B)\n",
                std::string(to_string(sframe.outcome)).c_str(),
                sframe.first_data_size);
    std::printf("[flow]         window=0: HEADERS %s, DATA %s\n",
                zero.headers_received ? "received" : "WITHHELD",
                zero.data_received ? "LEAKED" : "withheld");
    std::printf(
        "[flow]         WINDOW_UPDATE(0): stream -> %s, connection -> %s\n",
        std::string(to_string(wu.zero_on_stream)).c_str(),
        std::string(to_string(wu.zero_on_connection)).c_str());
    std::printf(
        "[flow]         overflow: stream -> %s, connection -> %s\n",
        std::string(to_string(wu.large_on_stream)).c_str(),
        std::string(to_string(wu.large_on_connection)).c_str());
  }
  if (probes.count("priority")) {
    const auto r = core::probe_priority_mechanism(target);
    const auto sd = core::probe_self_dependency(target);
    std::printf(
        "[priority]     Algorithm 1: %s (first-DATA rule: %s, last-DATA "
        "rule: %s)\n",
        r.passes() ? "PASS" : "FAIL", r.pass_by_first_data ? "pass" : "fail",
        r.pass_by_last_data ? "pass" : "fail");
    std::printf("[priority]     self-dependency -> %s\n",
                std::string(to_string(sd.reaction)).c_str());
  }
  if (probes.count("push")) {
    const auto r = core::probe_server_push(target);
    std::printf("[push]         %s", r.push_received ? "PUSH_PROMISE received:"
                                                     : "no push\n");
    if (r.push_received) {
      for (const auto& p : r.pushed_paths) std::printf(" %s", p.c_str());
      std::printf(" (%zu bytes)\n", r.pushed_bytes);
    }
  }
  if (probes.count("hpack")) {
    const auto r = core::probe_hpack_ratio(target);
    std::printf("[hpack]        compression ratio r=%.3f over %zu blocks (",
                r.ratio, r.header_sizes.size());
    for (std::size_t i = 0; i < r.header_sizes.size(); ++i) {
      std::printf("%s%zu", i ? " " : "", r.header_sizes[i]);
    }
    std::printf(" bytes)\n");
  }
  if (probes.count("ping")) {
    Rng rng(1);
    const auto r = core::probe_ping(target, 8, rng);
    double avg = 0;
    for (double v : r.h2_ping_ms) avg += v;
    std::printf("[ping]         %s; mean simulated RTT %.1f ms\n",
                r.supported ? "supported" : "NOT supported",
                r.h2_ping_ms.empty() ? 0.0 : avg / r.h2_ping_ms.size());
  }
  return 0;
}
