// Conformance audit: run the full H2Scope probe suite (Section III of the
// paper) against one server profile and print its Table III column next to
// the RFC 7540 expectation — the per-server view of bench_table3.
//
//   $ ./build/examples/conformance_audit            # audits nginx
//   $ ./build/examples/conformance_audit litespeed  # any profile key
#include <cstdio>
#include <string>

#include "core/report.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace h2r;
  const std::string key = argc > 1 ? argv[1] : "nginx";

  server::ServerProfile profile;
  try {
    profile = server::profile_by_key(key);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr,
                 "unknown profile '%s'; try nginx, litespeed, h2o, nghttpd, "
                 "tengine, apache, gse, cloudflare-nginx, ideawebserver, "
                 "tengine-aserver\n",
                 key.c_str());
    return 1;
  }

  std::printf("auditing '%s' (server header: %s)...\n\n", key.c_str(),
              profile.server_header.c_str());
  Rng rng(1);
  const core::Characterization c =
      core::characterize(core::Target::testbed(profile), rng);

  TextTable table({"Feature", key, "RFC 7540", "verdict"});
  const auto& labels = core::Characterization::row_labels();
  const auto values = c.row_values();
  const auto rfc = core::rfc7540_reference_column();
  int deviations = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // NPN is optional; every other mismatch is a deviation worth flagging.
    const bool conforms = values[i] == rfc[i] || rfc[i] == "does not require";
    if (!conforms) ++deviations;
    table.add_row({labels[i], values[i], rfc[i], conforms ? "ok" : "DEVIATES"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\n%d deviation(s) from RFC 7540.\n", deviations);
  std::printf("HPACK compression ratio (Equation 1, H=8): %.3f\n",
              c.hpack.ratio);
  if (c.settings.preemptive_window_bonus > 0) {
    std::printf(
        "quirk: announces SETTINGS_INITIAL_WINDOW_SIZE=0, then immediately "
        "raises the connection window by %llu (the Nginx idiom of §V-C).\n",
        static_cast<unsigned long long>(c.settings.preemptive_window_bonus));
  }
  return 0;
}
