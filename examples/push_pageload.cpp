// Push page-load demo: compare page-load time with server push enabled and
// disabled for one site across different network latencies — the mechanism
// behind the paper's Figure 3, in isolation.
//
//   $ ./build/examples/push_pageload
//   $ ./build/examples/push_pageload rememberthemilk.com 250
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pageload/loader.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace h2r;
  const std::string host = argc > 1 ? argv[1] : "nghttp2.org";
  const double bandwidth_kbps = argc > 2 ? std::atof(argv[2]) * 1.0 : 4'000;

  Rng rng(2026);
  pageload::Page page = pageload::Page::synthesize(host, rng);
  std::printf("page %s: html %zu bytes, %zu resources across %d depths, "
              "%zu bytes total\n\n",
              host.c_str(), page.html_size, page.resources.size(),
              page.max_depth(), page.total_bytes());

  TextTable table({"RTT (ms)", "PLT push off (s)", "PLT push on (s)",
                   "saving (ms)", "saving / RTT"});
  for (double rtt : {20.0, 50.0, 100.0, 200.0, 400.0}) {
    net::PathModel path;
    path.base_rtt_ms = rtt;
    path.jitter_ms = 0;  // isolate the structural effect
    pageload::LoadConditions off{.path = path, .bandwidth_kbps = bandwidth_kbps,
                                 .push_enabled = false};
    pageload::LoadConditions on{.path = path, .bandwidth_kbps = bandwidth_kbps,
                                .push_enabled = true};
    Rng ra(1), rb(1);
    const double t_off = pageload::simulate_page_load_ms(page, off, ra);
    const double t_on = pageload::simulate_page_load_ms(page, on, rb);
    char c0[16], c1[16], c2[16], c3[16], c4[16];
    std::snprintf(c0, sizeof c0, "%.0f", rtt);
    std::snprintf(c1, sizeof c1, "%.2f", t_off / 1000);
    std::snprintf(c2, sizeof c2, "%.2f", t_on / 1000);
    std::snprintf(c3, sizeof c3, "%.0f", t_off - t_on);
    std::snprintf(c4, sizeof c4, "%.2f", (t_off - t_on) / rtt);
    table.add_row({c0, c1, c2, c3, c4});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe saving tracks the discovery round trip push eliminates — the "
      "higher the latency, the bigger the win (consistent with §V-F and "
      "[21]).\n");
  return 0;
}
