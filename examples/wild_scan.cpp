// Wild scan: generate a subsample of the synthetic Alexa population and run
// the full H2Scope probe suite over it, printing a measurement summary —
// the miniature version of the paper's large-scale campaign.
//
//   $ ./build/examples/wild_scan              # 1/100 of experiment two
//   $ ./build/examples/wild_scan 1 50         # experiment one, 1/50 scale
#include <cstdio>
#include <cstdlib>

#include "corpus/scan.h"

int main(int argc, char** argv) {
  using namespace h2r;
  const int exp = argc > 1 ? std::atoi(argv[1]) : 2;
  const double scale = argc > 2 ? std::atof(argv[2]) : 100.0;
  const auto epoch =
      exp == 1 ? corpus::Epoch::kExp1 : corpus::Epoch::kExp2;

  std::printf("generating population for %s at 1/%.0f scale...\n",
              to_string(epoch).data(), scale);
  const auto population = corpus::generate_population(epoch, 42, scale);
  std::printf("  %zu h2-offering sites (%zu responding), %zu non-h2 sites\n",
              population.sites.size(), population.responding_count(),
              population.non_h2_sites);

  std::printf("scanning with every probe enabled...\n");
  const auto report = corpus::scan_population(population, {});

  std::printf("\n--- adoption ---\n");
  std::printf("h2 via NPN: %zu   via ALPN: %zu   responding: %zu\n",
              report.npn_sites, report.alpn_sites, report.responding_sites);
  std::printf("distinct server kinds: %zu\n", report.distinct_server_kinds);

  std::printf("\n--- top server families ---\n");
  std::vector<std::pair<std::size_t, std::string>> top;
  for (const auto& [name, count] : report.server_counts) {
    top.emplace_back(count, name);
  }
  std::sort(top.rbegin(), top.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(8, top.size()); ++i) {
    std::printf("  %-28s %zu sites\n", top[i].second.c_str(), top[i].first);
  }

  std::printf("\n--- flow control (Section V-D) ---\n");
  std::printf("1-octet window: %zu conformant, %zu zero-length, %zu silent\n",
              report.sframe_respecting, report.sframe_zero_length,
              report.sframe_no_response);
  std::printf("HEADERS at zero window: %zu of %zu\n",
              report.zero_window_headers_ok, report.responding_sites);
  std::printf("zero WINDOW_UPDATE: %zu RST_STREAM, %zu ignored, %zu GOAWAY\n",
              report.zero_wu_rst, report.zero_wu_ignore,
              report.zero_wu_goaway + report.zero_wu_goaway_debug);

  std::printf("\n--- priority (Section V-E) ---\n");
  std::printf("Algorithm 1: %zu pass by last-DATA, %zu by first, %zu by both\n",
              report.priority_pass_last, report.priority_pass_first,
              report.priority_pass_both);
  std::printf("self-dependency: %zu RST_STREAM, %zu GOAWAY, %zu ignored\n",
              report.self_dep_rst, report.self_dep_goaway,
              report.self_dep_ignore);

  std::printf("\n--- push (Section V-F) ---\n");
  std::printf("%zu sites push on their front page:", report.push_hosts.size());
  for (const auto& host : report.push_hosts) std::printf(" %s", host.c_str());
  std::printf("\n");

  std::printf("\n--- HPACK (Section V-G) ---\n");
  for (const auto& [family, ratios] : report.hpack_ratio_by_family) {
    double sum = 0;
    for (double r : ratios) sum += r;
    std::printf("  %-18s n=%-6zu mean r=%.3f\n", family.c_str(), ratios.size(),
                ratios.empty() ? 0.0 : sum / static_cast<double>(ratios.size()));
  }
  std::printf("  (r > 1 filtered: %zu sites)\n", report.hpack_filtered_out);
  return 0;
}
