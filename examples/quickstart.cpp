// Quickstart: bring up an in-process HTTP/2 server, make a request with the
// H2Scope client, and watch the frames — including a server push.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/client.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"

int main() {
  using namespace h2r;

  // 1. A server: pick a behaviour profile (here H2O, which supports push
  //    and priority scheduling) and give it a site to serve.
  server::Site site = server::Site::standard_testbed_site("quickstart.local");
  server::Http2Server server(server::h2o_profile(), std::move(site));

  // 2. A client connection. Options let probes plant arbitrary SETTINGS;
  //    the defaults behave like a regular browser.
  core::ClientConnection client;

  // 3. Request the front page and pump bytes until both sides go quiet.
  //    The transport is an injectable policy: swap LockstepTransport for
  //    net::FaultyTransport to watch the same conversation under faults.
  const std::uint32_t stream = client.send_request("/");
  net::LockstepTransport transport;
  transport.run(client, server);

  // 4. Inspect what happened, frame by frame.
  std::printf("frames received from the server:\n");
  for (const auto& ev : client.events()) {
    std::printf("  #%-3zu %s\n", ev.sequence, ev.frame.describe().c_str());
  }

  const auto headers = client.response_headers(stream);
  if (!headers) {
    std::fprintf(stderr, "no response!\n");
    return 1;
  }
  std::printf("\nresponse headers on stream %u:\n", stream);
  for (const auto& h : *headers) {
    std::printf("  %s: %s\n", h.name.c_str(), h.value.c_str());
  }
  std::printf("\nbody: %zu bytes, complete=%s\n", client.data_received(stream),
              client.stream_complete(stream) ? "yes" : "no");

  std::printf("\nserver push delivered %zu resources:\n",
              client.pushes().size());
  for (const auto& [promised_id, request] : client.pushes()) {
    std::printf("  stream %u <- %s (%zu bytes)\n", promised_id,
                std::string(hpack::find_header(request, ":path")).c_str(),
                client.data_received(promised_id));
  }
  return 0;
}
