// Priority explorer: walks through the paper's Figure 1 / Tables I-II
// dependency-tree example interactively — builds the tree, applies both
// PRIORITY-frame variants, and shows how each scheduler discipline would
// serve the streams.
//
//   $ ./build/examples/priority_explorer
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "h2/priority_tree.h"

namespace {

using namespace h2r;

// Stream letters of the paper's Figure 1, mapped onto client stream ids.
constexpr std::uint32_t A = 1, B = 3, C = 5, D = 7, E = 9, F = 11;

std::string letter(std::uint32_t id) {
  switch (id) {
    case A: return "A";
    case B: return "B";
    case C: return "C";
    case D: return "D";
    case E: return "E";
    case F: return "F";
    default: return "#" + std::to_string(id);
  }
}

void print_tree(const h2::PriorityTree& tree, std::uint32_t node = 0,
                int depth = 0) {
  if (node != 0) {
    std::printf("%*s%s (weight %d)\n", depth * 4, "", letter(node).c_str(),
                tree.weight_of(node));
  }
  for (std::uint32_t child : tree.children_of(node)) {
    print_tree(tree, child, node == 0 ? depth : depth + 1);
  }
}

h2::PriorityTree build_table1_tree() {
  // Table I: A depends on the root; B, C, D on A; E on B; F on D.
  h2::PriorityTree tree;
  (void)tree.declare(A, {.dependency = 0, .weight_field = 0});
  (void)tree.declare(B, {.dependency = A, .weight_field = 0});
  (void)tree.declare(C, {.dependency = A, .weight_field = 0});
  (void)tree.declare(D, {.dependency = A, .weight_field = 0});
  (void)tree.declare(E, {.dependency = B, .weight_field = 0});
  (void)tree.declare(F, {.dependency = D, .weight_field = 0});
  return tree;
}

void serve_all(h2::PriorityTree& tree, const char* title) {
  std::printf("%s: ", title);
  std::map<std::uint32_t, int> pending = {{A, 1}, {B, 1}, {C, 1},
                                          {D, 1}, {E, 1}, {F, 1}};
  auto wants = [&](std::uint32_t id) { return pending[id] > 0; };
  while (std::uint32_t next = tree.next_stream(wants)) {
    std::printf("%s ", letter(next).c_str());
    --pending[next];
    tree.account(next, 1000);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== The dependency tree of Table I (Figure 1, panel 1) ==\n");
  h2::PriorityTree tree = build_table1_tree();
  print_tree(tree);

  std::printf(
      "\n== PRIORITY frame, Table II row 1: A depends on B, EXCLUSIVE ==\n"
      "(Figure 1, panel 2 — A adopts all of B's former children)\n");
  h2::PriorityTree exclusive = build_table1_tree();
  (void)exclusive.reprioritize(
      A, {.dependency = B, .weight_field = 0, .exclusive = true});
  print_tree(exclusive);

  std::printf(
      "\n== PRIORITY frame, Table II row 2: A depends on B, non-exclusive ==\n"
      "(Figure 1, panel 3 — A becomes a sibling of E under B)\n");
  h2::PriorityTree plain = build_table1_tree();
  (void)plain.reprioritize(
      A, {.dependency = B, .weight_field = 0, .exclusive = false});
  print_tree(plain);

  std::printf(
      "\n== Scheduling order under the RFC 7540 dependency discipline ==\n");
  h2::PriorityTree original = build_table1_tree();
  serve_all(original, "Table I tree    ");
  serve_all(exclusive, "after exclusive ");
  serve_all(plain, "after non-excl. ");

  std::printf(
      "\n== Self-dependency (Section III-C2) ==\n"
      "PRIORITY making A depend on itself -> %s\n",
      build_table1_tree()
          .reprioritize(A, {.dependency = A})
          .to_string()
          .c_str());
  return 0;
}
